// Overload resilience: what each overflow policy trades away when a
// measurement thread falls behind (docs/ROBUSTNESS.md).
//
// The overload is an injected 25 ms consumer stall behind a small ring, with
// the producer paced at the NIC rate — the simulated equivalent of a core
// being stolen by the scheduler mid-burst. Three policies ride the same
// fault:
//   backpressure — producer spins, nothing lost, offered rate collapses;
//   drop-newest  — producer never blocks; the stall window's arrivals
//                  (minus one ring) are counted and dropped;
//   drop+degrade — same, plus the consumer wakes to a full ring, crosses the
//                  high watermark, and works it off in sampled mode with
//                  compensated weights — recorded mass stays an unbiased
//                  estimate of what it processed.
//
// A second table shows the crash-recovery accounting: a consumer killed
// mid-run is respawned from its last checkpoint, and recorded mass plus the
// reported bounded-loss estimate reconstructs the offered mass exactly.
#include "harness.h"
#include "obs/snapshot.h"
#include "ovs/datapath_sim.h"

using namespace coco;
using namespace coco::bench;

namespace {

ovs::DatapathConfig BaseConfig() {
  ovs::DatapathConfig dp;
  dp.num_queues = 1;
  dp.nic_rate_mpps = 4.0;  // paced: the stall window bounds the loss
  dp.ring_capacity = 1024;
  dp.sketch_memory_bytes = KiB(512);
  // after_packets = 0 fires the stall at the first drained batch — in drop
  // mode a higher trigger could race the producer's drops.
  dp.faults.stalls.push_back({0, 0, 25});
  return dp;
}

}  // namespace

int main() {
  const auto trace = trace::GenerateTrace(
      trace::TraceConfig::CaidaLike(BenchPackets(400'000)));
  std::printf(
      "Overload policies under an injected 25 ms consumer stall "
      "(%zu pkts at 4 Mpps, 1024-slot ring)\n",
      trace.size());

  ovs::DatapathConfig backpressure = BaseConfig();

  ovs::DatapathConfig drop = BaseConfig();
  drop.overflow = ovs::OverflowPolicy::kDropNewest;

  ovs::DatapathConfig degrade = drop;
  degrade.degrade_enabled = true;
  degrade.degrade_sample_prob = 0.25;

  std::vector<double> mpps, dropped, processed_pct, degraded_pct, mass_pct;
  for (const auto& config : {backpressure, drop, degrade}) {
    const auto r = ovs::RunDatapath(config, trace);
    mpps.push_back(r.mpps);
    dropped.push_back(static_cast<double>(r.health.rx_dropped));
    processed_pct.push_back(100.0 *
                            static_cast<double>(r.packets_processed) /
                            static_cast<double>(trace.size()));
    degraded_pct.push_back(100.0 * r.health.degraded_fraction);
    mass_pct.push_back(100.0 *
                       static_cast<double>(metrics::TotalMass(r.merged_table)) /
                       static_cast<double>(trace.size()));
  }

  PrintHeader("Policy comparison");
  PrintColumns("policy", {"backpr", "drop", "drop+deg"});
  PrintRow("mpps", mpps, " %8.2f");
  PrintRow("rx_drop", dropped, " %8.0f");
  PrintRow("proc%", processed_pct, " %8.2f");
  PrintRow("degr%", degraded_pct, " %8.2f");
  PrintRow("mass%", mass_pct, " %8.2f");

  // Crash recovery: kill the consumer halfway, restore from checkpoint. The
  // run publishes into a metrics registry so the accounting below can also be
  // read back from counters alone (docs/OBSERVABILITY.md).
  obs::Registry registry;
  ovs::DatapathConfig crash;
  crash.num_queues = 1;
  crash.nic_rate_mpps = 1000.0;
  crash.ring_capacity = 1024;
  crash.sketch_memory_bytes = KiB(512);
  crash.checkpoint_interval = 4096;
  crash.watchdog_timeout_ms = 50;
  crash.faults.kills.push_back({0, trace.size() / 2});
  crash.registry = &registry;
  const auto r = ovs::RunDatapath(crash, trace);
  const uint64_t mass = metrics::TotalMass(r.merged_table);

  PrintHeader("Crash recovery accounting (kill at 50%, ckpt every 4096)");
  std::printf("offered            %12zu\n", trace.size());
  std::printf("recorded mass      %12llu\n",
              static_cast<unsigned long long>(mass));
  std::printf("lost (bounded)     %12llu\n",
              static_cast<unsigned long long>(r.health.packets_lost_estimate));
  std::printf("mass + lost        %12llu   (== offered)\n",
              static_cast<unsigned long long>(mass +
                                              r.health.packets_lost_estimate));
  std::printf("checkpoints taken  %12llu, restores %llu\n",
              static_cast<unsigned long long>(r.health.checkpoints_taken),
              static_cast<unsigned long long>(r.health.restores));

  // The same story from the registry: per-queue packet conservation plus the
  // checkpoint byte volume, all from counters the datapath kept live.
  const auto view = ovs::ReadConservation(&registry, crash.num_queues);
  std::printf("registry conserve  %12llu = %llu exact + %llu degraded + "
              "%llu dropped -> %s\n",
              static_cast<unsigned long long>(view.offered),
              static_cast<unsigned long long>(view.exact),
              static_cast<unsigned long long>(view.degraded),
              static_cast<unsigned long long>(view.rx_dropped),
              view.Holds() ? "OK" : "VIOLATED");
  std::printf("checkpoint bytes   %12llu\n",
              static_cast<unsigned long long>(
                  registry.GetCounter("ovs.q0.checkpoint_bytes")->Value()));

  std::printf("\nmetrics snapshot of the crash run:\n%s\n",
              obs::ToJson(obs::CaptureSnapshot(registry), /*pretty=*/false)
                  .c_str());

  std::printf(
      "\nExpected shape: backpressure records 100%% of mass, pushing the\n"
      "stall back onto the wire; drop-newest never blocks and loses the\n"
      "stall window's arrivals (mass%% tracks proc%%); with the ladder a\n"
      "slice of the backlog is processed in sampled mode (degr%% > 0) and\n"
      "mass%% still tracks proc%% — compensation keeps it unbiased. The crash\n"
      "run reconstructs offered mass exactly from recorded + bounded loss.\n");
  return 0;
}
