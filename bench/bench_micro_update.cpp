// google-benchmark microbenchmarks: per-update latency of every sketch in
// the library on a realistic packet mix. Complements the figure benches with
// framework-quality timing (warmup, iteration control, statistics).
//
// Before the google-benchmark suite runs, main() prints the SIMD tier table
// (scalar vs batched vs each tier at the paper's 500 KiB / d=2 operating
// point, all engines interleaved in ONE process so machine drift between
// invocations cancels) and writes BENCH_micro_update.json for
// scripts/bench_compare.sh. Pass --benchmark_filter='^$' to run only the
// tier table.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "bench_json.h"
#include "common/cycle_clock.h"
#include "common/rng.h"
#include "common/sizes.h"
#include "core/cocosketch.h"
#include "core/hw_cocosketch.h"
#include "hash/multihash.h"
#include "simd/dispatch.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/elastic.h"
#include "sketch/space_saving.h"
#include "sketch/univmon.h"
#include "sketch/uss.h"
#include "trace/generators.h"

namespace coco {
namespace {

const std::vector<Packet>& SharedTrace() {
  static const std::vector<Packet> trace =
      trace::GenerateTrace(trace::TraceConfig::CaidaLike(200'000));
  return trace;
}

// Streams the shared trace through `sketch`, one update per iteration.
template <typename SketchT>
void RunUpdates(benchmark::State& state, SketchT& sketch) {
  const auto& trace = SharedTrace();
  size_t i = 0;
  for (auto _ : state) {
    const Packet& p = trace[i];
    sketch.Update(p.key, p.weight);
    i = (i + 1) % trace.size();
  }
  state.SetItemsProcessed(state.iterations());
}

// Streams the shared trace through `sketch.UpdateBatch` in chunks of
// `batch` packets; one iteration = one batch, items/sec stays comparable
// with RunUpdates via SetItemsProcessed.
template <typename SketchT>
void RunBatchedUpdates(benchmark::State& state, SketchT& sketch,
                       size_t batch) {
  const auto& trace = SharedTrace();
  size_t i = 0;
  uint64_t items = 0;
  for (auto _ : state) {
    const size_t n = std::min(batch, trace.size() - i);
    sketch.UpdateBatch(trace.data() + i, n);
    items += n;
    i += n;
    if (i == trace.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<int64_t>(items));
}

// Memory sizes chosen to span the cache hierarchy: 24 KiB sits in L1,
// 192 KiB in L2, 500 KiB (the paper's CPU config) in L2/LLC, 4 MiB in
// LLC/DRAM — where the prefetch pipeline pays off.
const std::vector<int64_t> kDs = {1, 2, 3, 4};
const std::vector<int64_t> kMemKiB = {24, 192, 500, 4096};

void BM_CocoSketchUpdateScalar(benchmark::State& state) {
  core::CocoSketch<FiveTuple> sketch(KiB(state.range(1)), state.range(0));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_CocoSketchUpdateScalar)->ArgsProduct({kDs, kMemKiB});

void BM_CocoSketchUpdateBatched(benchmark::State& state) {
  core::CocoSketch<FiveTuple> sketch(KiB(state.range(1)), state.range(0));
  RunBatchedUpdates(state, sketch,
                    core::CocoSketch<FiveTuple>::kBatchWindow);
}
BENCHMARK(BM_CocoSketchUpdateBatched)->ArgsProduct({kDs, kMemKiB});

// Batch-size sweep at the paper's 500 KiB / d=2 config: shows where the
// prefetch pipeline saturates (and that tiny batches degrade to scalar).
void BM_CocoSketchBatchSweep(benchmark::State& state) {
  core::CocoSketch<FiveTuple> sketch(KiB(500), 2);
  RunBatchedUpdates(state, sketch, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_CocoSketchBatchSweep)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_HwCocoSketchUpdate(benchmark::State& state) {
  core::HwCocoSketch<FiveTuple> sketch(KiB(500), state.range(0));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_HwCocoSketchUpdate)->Arg(1)->Arg(2);

void BM_HwCocoSketchUpdateBatched(benchmark::State& state) {
  core::HwCocoSketch<FiveTuple> sketch(KiB(500), state.range(0));
  RunBatchedUpdates(state, sketch,
                    core::HwCocoSketch<FiveTuple>::kBatchWindow);
}
BENCHMARK(BM_HwCocoSketchUpdateBatched)->Arg(1)->Arg(2);

void BM_HwCocoSketchP4Update(benchmark::State& state) {
  core::HwCocoSketch<FiveTuple> sketch(KiB(500), 2,
                                       core::DivisionMode::kApproximate);
  RunUpdates(state, sketch);
}
BENCHMARK(BM_HwCocoSketchP4Update);

void BM_CountMinUpdate(benchmark::State& state) {
  sketch::CountMinSketch<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_CountMinUpdate);

void BM_CmHeapUpdate(benchmark::State& state) {
  sketch::CmHeap<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_CmHeapUpdate);

void BM_CountSketchUpdate(benchmark::State& state) {
  sketch::CountSketch<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_CountSketchUpdate);

void BM_SpaceSavingUpdate(benchmark::State& state) {
  sketch::SpaceSaving<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_SpaceSavingUpdate);

void BM_UssUpdate(benchmark::State& state) {
  sketch::UnbiasedSpaceSaving<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_UssUpdate);

void BM_ElasticUpdate(benchmark::State& state) {
  sketch::ElasticSketch<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_ElasticUpdate);

void BM_UnivMonUpdate(benchmark::State& state) {
  sketch::UnivMon<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_UnivMonUpdate);

void BM_CocoSketchDecode(benchmark::State& state) {
  core::CocoSketch<FiveTuple> sketch(KiB(500), 2);
  for (const Packet& p : SharedTrace()) sketch.Update(p.key, p.weight);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Decode());
  }
}
BENCHMARK(BM_CocoSketchDecode);

// ---- SIMD tier table (ISSUE 6 acceptance) ----------------------------------

// The PR 1 batched path, preserved verbatim as an in-process baseline:
// array-of-structs buckets, operator== (memcmp) key compares, the same
// MultiHash / 32-packet window / prefetch / §4.1 update rule the library
// shipped before the word-addressable SoA layout and SIMD tiers replaced
// it. Keeping it in the binary means the "≥1.3× over the PR 1 batched
// path" bar is measured engine-vs-engine in one process — cross-invocation
// numbers on a shared box drift by ±30%, interleaved ones don't.
template <typename Key>
class Pr1ReferenceSketch {
 public:
  static constexpr size_t kMaxD = 8;
  static constexpr size_t kBatchWindow = 32;

  Pr1ReferenceSketch(size_t memory_bytes, size_t d, uint64_t seed = 0xc0c0)
      : d_(d),
        l_(memory_bytes / (d * (Key::kSize + sizeof(uint32_t)))),
        hash_(seed, d_, l_ == 0 ? 1 : l_),
        rng_(seed ^ 0x5eedf00d),
        buckets_(d_ * l_) {}

  template <typename Record>
  void UpdateBatch(const Record* records, size_t count) {
    size_t idx[kBatchWindow][kMaxD];
    for (size_t base = 0; base < count; base += kBatchWindow) {
      const size_t n =
          count - base < kBatchWindow ? count - base : kBatchWindow;
      for (size_t j = 0; j < n; ++j) {
        const Key& key = records[base + j].key;
        uint32_t slot[kMaxD];
        hash_.Slots(key.data(), key.size(), slot);
        for (size_t i = 0; i < d_; ++i) {
          idx[j][i] = i * l_ + slot[i];
          __builtin_prefetch(&buckets_[idx[j][i]], 1, 3);
        }
      }
      for (size_t j = 0; j < n; ++j) {
        UpdateAt(idx[j], records[base + j].key, records[base + j].weight);
      }
    }
  }

  uint64_t TotalValue() const {
    uint64_t total = 0;
    for (const Bucket& b : buckets_) total += b.value;
    return total;
  }

 private:
  struct Bucket {
    Key key{};
    uint32_t value = 0;
  };

  // Verbatim PR 1 UpdateAt, including the per-update bookkeeping the real
  // path carried (delta-tracking check, replacement counter) — leaving
  // those out would flatter the new code's speedup.
  void MarkDirty(size_t i) {
    if (!dirty_.empty()) dirty_[i] = 1;
  }

  void UpdateAt(const size_t* idx, const Key& key, uint32_t weight) {
    for (size_t i = 0; i < d_; ++i) {
      Bucket& b = buckets_[idx[i]];
      if (b.value != 0 && b.key == key) {
        b.value += weight;
        MarkDirty(idx[i]);
        return;
      }
    }
    size_t chosen = idx[0];
    size_t ties = 1;
    for (size_t i = 1; i < d_; ++i) {
      const uint32_t v = buckets_[idx[i]].value;
      const uint32_t best = buckets_[chosen].value;
      if (v < best) {
        chosen = idx[i];
        ties = 1;
      } else if (v == best) {
        ++ties;
        if (rng_.NextBelow(ties) == 0) chosen = idx[i];
      }
    }
    Bucket& b = buckets_[chosen];
    b.value += weight;
    MarkDirty(chosen);
    if (static_cast<uint64_t>(rng_.Next32()) * b.value <
        (static_cast<uint64_t>(weight) << 32)) {
      b.key = key;
      ++key_replacements_;
    }
  }

  size_t d_;
  size_t l_;
  hash::MultiHash hash_;
  Rng rng_;
  std::vector<Bucket> buckets_;
  std::vector<uint8_t> dirty_;  // empty = delta tracking off, as in PR 1
  uint64_t key_replacements_ = 0;
};

struct TierRow {
  std::string name;
  std::string json_key;
};

// One timed full-trace pass on a persistent engine.
template <typename RunFn>
double TimeOnePass(size_t packets, RunFn&& run) {
  Stopwatch watch;
  run();
  return watch.ElapsedSeconds() * 1e9 / static_cast<double>(packets);
}

// Steady-state throughput, best-of-N with all engines interleaved per
// repetition. Two methodology choices that matter:
//
//   * Engines persist across reps (one untimed warmup pass first), so every
//     rep measures the saturated sketch a continuously-running deployment
//     operates — pass 1 match rates at equilibrium. Fresh-sketch cold
//     passes spend their time in the replacement path, where the layouts
//     barely differ, and under-report the probe-path speedup.
//   * Every rep touches every engine back to back, so CPU frequency and
//     neighbor-load drift (±30% across invocations on a shared box) hits
//     all engines equally and cancels in the ratios.
void RunTierTable(const char* json_path) {
  const auto& trace = SharedTrace();
  const size_t mem = KiB(500);
  const size_t d = 2;
  const int reps = 15;
  const simd::Tier host = simd::DetectTier();

  std::vector<TierRow> rows;
  rows.push_back({"per-packet (scalar tier)", "per_packet_scalar"});
  rows.push_back({"batched PR1 reference (AoS)", "batched_pr1_ref"});
  std::vector<simd::Tier> tiers;
  for (simd::Tier t :
       {simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2}) {
    if (simd::ClampTier(t) != t) continue;
    tiers.push_back(t);
    rows.push_back({std::string("batched ") + simd::TierName(t) + " tier",
                    std::string("batched_") + simd::TierName(t)});
  }

  core::CocoSketch<FiveTuple> per_packet(mem, d);
  per_packet.SetSimdTier(simd::Tier::kScalar);
  Pr1ReferenceSketch<FiveTuple> pr1_ref(mem, d);
  std::vector<core::CocoSketch<FiveTuple>> batched;
  batched.reserve(tiers.size());
  for (simd::Tier t : tiers) {
    batched.emplace_back(mem, d);
    batched.back().SetSimdTier(t);
  }
  // Warmup to equilibrium occupancy (untimed).
  for (const Packet& p : trace) per_packet.Update(p.key, p.weight);
  pr1_ref.UpdateBatch(trace.data(), trace.size());
  for (auto& sk : batched) sk.UpdateBatch(trace.data(), trace.size());

  std::vector<double> best(rows.size(), 1e18);
  for (int rep = 0; rep < reps; ++rep) {
    size_t r = 0;
    best[r] = std::min(best[r], TimeOnePass(trace.size(), [&] {
      for (const Packet& p : trace) per_packet.Update(p.key, p.weight);
    }));
    ++r;
    best[r] = std::min(best[r], TimeOnePass(trace.size(), [&] {
      pr1_ref.UpdateBatch(trace.data(), trace.size());
    }));
    ++r;
    for (auto& sk : batched) {
      best[r] = std::min(best[r], TimeOnePass(trace.size(), [&] {
        sk.UpdateBatch(trace.data(), trace.size());
      }));
      ++r;
    }
    benchmark::DoNotOptimize(pr1_ref.TotalValue());
  }

  const double ref_ns = best[1];  // PR 1 batched reference
  std::printf(
      "\n=== SIMD tier table: CocoSketch<FiveTuple>, %zu pkts, 500 KiB, "
      "d=%zu, best of %d interleaved ===\n",
      trace.size(), d, reps);
  std::printf("host tier: %s\n", simd::TierName(host));
  std::printf("%-30s %10s %8s %12s\n", "engine", "ns/pkt", "Mpps",
              "vs PR1 ref");
  bench::BenchJson json("micro_update");
  json.Context("host_tier", simd::TierName(host));
  json.Context("operating_point", "500KiB_d2_FiveTuple");
  for (size_t r = 0; r < rows.size(); ++r) {
    const double mpps = 1e3 / best[r];
    const double speedup = ref_ns / best[r];
    std::printf("%-30s %10.2f %8.2f %11.2fx\n", rows[r].name.c_str(),
                best[r], mpps, speedup);
    json.Metric("micro_update/" + rows[r].json_key + "/mpps", mpps);
    json.Metric("micro_update/" + rows[r].json_key + "/speedup_vs_pr1",
                speedup);
  }
  const double best_tier_speedup = ref_ns / best.back();
  std::printf("headline: best tier is %.2fx the PR 1 batched path "
              "(bar: 1.30x)\n",
              best_tier_speedup);
  json.Write(json_path);
}

}  // namespace
}  // namespace coco

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* json_path = std::getenv("COCO_BENCH_JSON");
  coco::RunTierTable(json_path ? json_path : "BENCH_micro_update.json");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
