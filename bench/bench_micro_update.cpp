// google-benchmark microbenchmarks: per-update latency of every sketch in
// the library on a realistic packet mix. Complements the figure benches with
// framework-quality timing (warmup, iteration control, statistics).
#include <benchmark/benchmark.h>

#include "common/sizes.h"
#include "core/cocosketch.h"
#include "core/hw_cocosketch.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/elastic.h"
#include "sketch/space_saving.h"
#include "sketch/univmon.h"
#include "sketch/uss.h"
#include "trace/generators.h"

namespace coco {
namespace {

const std::vector<Packet>& SharedTrace() {
  static const std::vector<Packet> trace =
      trace::GenerateTrace(trace::TraceConfig::CaidaLike(200'000));
  return trace;
}

// Streams the shared trace through `sketch`, one update per iteration.
template <typename SketchT>
void RunUpdates(benchmark::State& state, SketchT& sketch) {
  const auto& trace = SharedTrace();
  size_t i = 0;
  for (auto _ : state) {
    const Packet& p = trace[i];
    sketch.Update(p.key, p.weight);
    i = (i + 1) % trace.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CocoSketchUpdate(benchmark::State& state) {
  core::CocoSketch<FiveTuple> sketch(KiB(500), state.range(0));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_CocoSketchUpdate)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_HwCocoSketchUpdate(benchmark::State& state) {
  core::HwCocoSketch<FiveTuple> sketch(KiB(500), state.range(0));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_HwCocoSketchUpdate)->Arg(1)->Arg(2);

void BM_HwCocoSketchP4Update(benchmark::State& state) {
  core::HwCocoSketch<FiveTuple> sketch(KiB(500), 2,
                                       core::DivisionMode::kApproximate);
  RunUpdates(state, sketch);
}
BENCHMARK(BM_HwCocoSketchP4Update);

void BM_CountMinUpdate(benchmark::State& state) {
  sketch::CountMinSketch<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_CountMinUpdate);

void BM_CmHeapUpdate(benchmark::State& state) {
  sketch::CmHeap<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_CmHeapUpdate);

void BM_CountSketchUpdate(benchmark::State& state) {
  sketch::CountSketch<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_CountSketchUpdate);

void BM_SpaceSavingUpdate(benchmark::State& state) {
  sketch::SpaceSaving<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_SpaceSavingUpdate);

void BM_UssUpdate(benchmark::State& state) {
  sketch::UnbiasedSpaceSaving<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_UssUpdate);

void BM_ElasticUpdate(benchmark::State& state) {
  sketch::ElasticSketch<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_ElasticUpdate);

void BM_UnivMonUpdate(benchmark::State& state) {
  sketch::UnivMon<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_UnivMonUpdate);

void BM_CocoSketchDecode(benchmark::State& state) {
  core::CocoSketch<FiveTuple> sketch(KiB(500), 2);
  for (const Packet& p : SharedTrace()) sketch.Update(p.key, p.weight);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Decode());
  }
}
BENCHMARK(BM_CocoSketchDecode);

}  // namespace
}  // namespace coco

BENCHMARK_MAIN();
