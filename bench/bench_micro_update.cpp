// google-benchmark microbenchmarks: per-update latency of every sketch in
// the library on a realistic packet mix. Complements the figure benches with
// framework-quality timing (warmup, iteration control, statistics).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/sizes.h"
#include "core/cocosketch.h"
#include "core/hw_cocosketch.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/elastic.h"
#include "sketch/space_saving.h"
#include "sketch/univmon.h"
#include "sketch/uss.h"
#include "trace/generators.h"

namespace coco {
namespace {

const std::vector<Packet>& SharedTrace() {
  static const std::vector<Packet> trace =
      trace::GenerateTrace(trace::TraceConfig::CaidaLike(200'000));
  return trace;
}

// Streams the shared trace through `sketch`, one update per iteration.
template <typename SketchT>
void RunUpdates(benchmark::State& state, SketchT& sketch) {
  const auto& trace = SharedTrace();
  size_t i = 0;
  for (auto _ : state) {
    const Packet& p = trace[i];
    sketch.Update(p.key, p.weight);
    i = (i + 1) % trace.size();
  }
  state.SetItemsProcessed(state.iterations());
}

// Streams the shared trace through `sketch.UpdateBatch` in chunks of
// `batch` packets; one iteration = one batch, items/sec stays comparable
// with RunUpdates via SetItemsProcessed.
template <typename SketchT>
void RunBatchedUpdates(benchmark::State& state, SketchT& sketch,
                       size_t batch) {
  const auto& trace = SharedTrace();
  size_t i = 0;
  uint64_t items = 0;
  for (auto _ : state) {
    const size_t n = std::min(batch, trace.size() - i);
    sketch.UpdateBatch(trace.data() + i, n);
    items += n;
    i += n;
    if (i == trace.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<int64_t>(items));
}

// Memory sizes chosen to span the cache hierarchy: 24 KiB sits in L1,
// 192 KiB in L2, 500 KiB (the paper's CPU config) in L2/LLC, 4 MiB in
// LLC/DRAM — where the prefetch pipeline pays off.
const std::vector<int64_t> kDs = {1, 2, 3, 4};
const std::vector<int64_t> kMemKiB = {24, 192, 500, 4096};

void BM_CocoSketchUpdateScalar(benchmark::State& state) {
  core::CocoSketch<FiveTuple> sketch(KiB(state.range(1)), state.range(0));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_CocoSketchUpdateScalar)->ArgsProduct({kDs, kMemKiB});

void BM_CocoSketchUpdateBatched(benchmark::State& state) {
  core::CocoSketch<FiveTuple> sketch(KiB(state.range(1)), state.range(0));
  RunBatchedUpdates(state, sketch,
                    core::CocoSketch<FiveTuple>::kBatchWindow);
}
BENCHMARK(BM_CocoSketchUpdateBatched)->ArgsProduct({kDs, kMemKiB});

// Batch-size sweep at the paper's 500 KiB / d=2 config: shows where the
// prefetch pipeline saturates (and that tiny batches degrade to scalar).
void BM_CocoSketchBatchSweep(benchmark::State& state) {
  core::CocoSketch<FiveTuple> sketch(KiB(500), 2);
  RunBatchedUpdates(state, sketch, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_CocoSketchBatchSweep)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_HwCocoSketchUpdate(benchmark::State& state) {
  core::HwCocoSketch<FiveTuple> sketch(KiB(500), state.range(0));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_HwCocoSketchUpdate)->Arg(1)->Arg(2);

void BM_HwCocoSketchUpdateBatched(benchmark::State& state) {
  core::HwCocoSketch<FiveTuple> sketch(KiB(500), state.range(0));
  RunBatchedUpdates(state, sketch,
                    core::HwCocoSketch<FiveTuple>::kBatchWindow);
}
BENCHMARK(BM_HwCocoSketchUpdateBatched)->Arg(1)->Arg(2);

void BM_HwCocoSketchP4Update(benchmark::State& state) {
  core::HwCocoSketch<FiveTuple> sketch(KiB(500), 2,
                                       core::DivisionMode::kApproximate);
  RunUpdates(state, sketch);
}
BENCHMARK(BM_HwCocoSketchP4Update);

void BM_CountMinUpdate(benchmark::State& state) {
  sketch::CountMinSketch<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_CountMinUpdate);

void BM_CmHeapUpdate(benchmark::State& state) {
  sketch::CmHeap<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_CmHeapUpdate);

void BM_CountSketchUpdate(benchmark::State& state) {
  sketch::CountSketch<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_CountSketchUpdate);

void BM_SpaceSavingUpdate(benchmark::State& state) {
  sketch::SpaceSaving<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_SpaceSavingUpdate);

void BM_UssUpdate(benchmark::State& state) {
  sketch::UnbiasedSpaceSaving<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_UssUpdate);

void BM_ElasticUpdate(benchmark::State& state) {
  sketch::ElasticSketch<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_ElasticUpdate);

void BM_UnivMonUpdate(benchmark::State& state) {
  sketch::UnivMon<FiveTuple> sketch(KiB(500));
  RunUpdates(state, sketch);
}
BENCHMARK(BM_UnivMonUpdate);

void BM_CocoSketchDecode(benchmark::State& state) {
  core::CocoSketch<FiveTuple> sketch(KiB(500), 2);
  for (const Packet& p : SharedTrace()) sketch.Update(p.key, p.weight);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Decode());
  }
}
BENCHMARK(BM_CocoSketchDecode);

}  // namespace
}  // namespace coco

BENCHMARK_MAIN();
