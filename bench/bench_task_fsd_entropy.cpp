// Extension bench: distribution-level tasks from §1's task list — flow size
// distribution and entropy — recovered from decoded sketches, compared to
// exact ground truth. Shows CocoSketch's decoded table is usable beyond
// point queries, and contrasts UnivMon's native G-sum entropy estimator.
#include "harness.h"
#include "metrics/distribution.h"

using namespace coco;
using namespace coco::bench;

int main() {
  const size_t memory = MiB(1);
  const auto trace =
      trace::GenerateTrace(trace::TraceConfig::CaidaLike(BenchPackets()));
  const auto truth = trace::CountTrace(trace);

  const double true_entropy = metrics::EmpiricalEntropy(truth.counts());
  const auto true_hist = metrics::FlowSizeHistogram(truth.counts());
  std::printf(
      "Distribution tasks (%zu pkts, %s): true entropy %.3f bits, %zu "
      "flows\n\n",
      trace.size(), FormatBytes(memory).c_str(), true_entropy,
      truth.DistinctFlows());
  std::printf("%-12s %12s %14s\n", "sketch", "entropy", "FSD TV-dist");

  {
    core::CocoSketch<FiveTuple> coco(memory, 2);
    for (const Packet& p : trace) coco.Update(p.key, p.weight);
    const auto decoded = coco.Decode();
    std::printf("%-12s %12.3f %14.4f\n", "Coco",
                metrics::EmpiricalEntropy(decoded),
                metrics::HistogramDistance(
                    true_hist, metrics::FlowSizeHistogram(decoded)));
  }
  {
    sketch::UnbiasedSpaceSaving<FiveTuple> uss(memory);
    for (const Packet& p : trace) uss.Update(p.key, p.weight);
    const auto decoded = uss.Decode();
    std::printf("%-12s %12.3f %14.4f\n", "USS",
                metrics::EmpiricalEntropy(decoded),
                metrics::HistogramDistance(
                    true_hist, metrics::FlowSizeHistogram(decoded)));
  }
  {
    sketch::UnivMon<FiveTuple> um(memory, 14, 1024);
    for (const Packet& p : trace) um.Update(p.key, p.weight);
    std::printf("%-12s %12.3f %14s   (native G-sum estimator)\n",
                "UnivMon", um.EstimateEntropy(truth.Total()), "-");
  }

  std::printf(
      "\nNote: decoded tables cover the heavy side of the distribution, so "
      "the\nrecovered entropy under-weights mice; UnivMon's universal "
      "recursion targets\nentropy directly. Both land near the true value at "
      "this memory.\n");
  return 0;
}
