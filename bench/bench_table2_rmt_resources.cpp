// Table 2: resource usage breakdown of one single-key sketch (Count-Min and
// an R-HHH level) on a Tofino-class switch, plus the max-instances result
// ("cannot support more than four single-key sketches").
#include <cstdio>

#include "hw/rmt_model.h"

using namespace coco::hw;

namespace {

void PrintUsage(const char* name, const UsageFractions& u) {
  std::printf("%-28s %9.2f%% %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n", name,
              100.0 * u.hash_dist, 100.0 * u.stateful_alus,
              100.0 * u.gateways, 100.0 * u.map_ram, 100.0 * u.sram);
}

}  // namespace

int main() {
  std::printf("=== Table 2: single-key sketch resource usage on Tofino ===\n");
  std::printf("%-28s %10s %10s %10s %10s %10s\n", "Sketch", "HashDist",
              "StatefulALU", "Gateway", "MapRAM", "SRAM");

  const SwitchSpec tofino = SwitchSpec::Tofino();
  {
    RmtPipelineModel model(tofino);
    model.Place(SketchResourceSpec::CountMin());
    PrintUsage("Count-Min", model.Usage());
  }
  {
    RmtPipelineModel model(tofino);
    model.Place(SketchResourceSpec::RHhhLevel());
    PrintUsage("R-HHH (per level)", model.Usage());
  }

  std::printf("\nPaper reference (Table 2):\n");
  std::printf("%-28s %9s %11s %9s %9s %9s\n", "Count-Min", "20.83%", "16.67%",
              "7.81%", "7.11%", "4.27%");
  std::printf("%-28s %9s %11s %9s %9s %9s\n", "R-HHH", "22.22%", "16.67%",
              "8.33%", "7.11%", "4.27%");

  std::printf("\nMax instances fitting one switch:\n");
  std::printf("  Count-Min : %zu   (paper: at most 4; hash units bind)\n",
              RmtPipelineModel::MaxInstances(
                  tofino, SketchResourceSpec::CountMin()));
  std::printf("  Elastic   : %zu   (paper §7.4: at most 4; stateful ALUs bind)\n",
              RmtPipelineModel::MaxInstances(tofino,
                                             SketchResourceSpec::Elastic()));
  std::printf("  CocoSketch: %zu   (one instance serves ALL partial keys)\n",
              RmtPipelineModel::MaxInstances(
                  tofino, SketchResourceSpec::CocoSketch(2)));
  return 0;
}
