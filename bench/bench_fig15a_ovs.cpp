// Figure 15(a): OVS datapath throughput vs number of threads, with and
// without CocoSketch measurement, NIC line rate modeled as a token-bucket
// cap. On the paper's testbed throughput saturates the 40G NIC at >= 2
// threads with < 1.8% CPU overhead from the sketch.
//
// NOTE: on hosts with fewer cores than datapath threads the thread-scaling
// effect is muted (threads time-share); the NIC-cap saturation shape is
// still visible.
#include <thread>

#include "harness.h"
#include "ovs/datapath_sim.h"

using namespace coco;
using namespace coco::bench;

int main() {
  const auto trace = trace::GenerateTrace(
      trace::TraceConfig::CaidaLike(BenchPackets(400'000)));
  std::printf(
      "Figure 15(a): OVS throughput vs threads (%zu pkts, NIC cap 13 Mpps, "
      "host has %u cores)\n",
      trace.size(), std::thread::hardware_concurrency());

  std::vector<double> with_sketch, without_sketch, overhead, batch_fill;
  for (size_t threads = 1; threads <= 4; ++threads) {
    ovs::DatapathConfig with;
    with.num_queues = threads;
    with.nic_rate_mpps = 13.0;
    with.with_sketch = true;
    with.sketch_memory_bytes = KiB(512);
    const auto rw = ovs::RunDatapath(with, trace);
    with_sketch.push_back(rw.mpps);
    overhead.push_back(100.0 * rw.measurement_cpu_fraction);
    batch_fill.push_back(rw.avg_batch_fill);

    ovs::DatapathConfig without = with;
    without.with_sketch = false;
    without_sketch.push_back(ovs::RunDatapath(without, trace).mpps);
  }

  PrintHeader("Fig 15(a): throughput (Mpps) vs threads");
  PrintColumns("config", {"1", "2", "3", "4"});
  PrintRow("OVS w/o", without_sketch, " %8.2f");
  PrintRow("OVS w/", with_sketch, " %8.2f");
  PrintRow("upd-cpu%", overhead, " %8.2f");
  PrintRow("batchfill", batch_fill, " %8.2f");

  std::printf(
      "\nExpected shape (paper): both configs climb with threads and pin at "
      "the NIC\nline rate; adding CocoSketch costs <1.8%% measurement CPU.\n");
  return 0;
}
