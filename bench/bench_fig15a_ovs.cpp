// Figure 15(a): OVS datapath throughput vs number of threads, with and
// without CocoSketch measurement, NIC line rate modeled as a token-bucket
// cap. On the paper's testbed throughput saturates the 40G NIC at >= 2
// threads with < 1.8% CPU overhead from the sketch.
//
// Second half: the multi-core scale-out curve (ovs/scaleout.h) — RSS flow
// steering, per-shard single-writer sketches, work stealing — run UNCAPPED
// so the compute path itself is what scales, swept over thread counts up to
// the host's hardware concurrency (8 always included, per the scale-out
// acceptance gate). Per-core efficiency divides by min(threads, host cores):
// on hosts with fewer cores than threads the extra threads time-share, which
// is oversubscription, not a scaling defect.
//
// Emits BENCH_fig15a_scaling.json (bench/bench_json.h) for
// scripts/bench_compare.sh; the per_core_efficiency metrics are the ones the
// CI regression gate watches (> 5% drop fails).
#include <algorithm>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "harness.h"
#include "ovs/datapath_sim.h"
#include "ovs/scaleout.h"

using namespace coco;
using namespace coco::bench;

int main() {
  const auto trace = trace::GenerateTrace(
      trace::TraceConfig::CaidaLike(BenchPackets(400'000)));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf(
      "Figure 15(a): OVS throughput vs threads (%zu pkts, NIC cap 13 Mpps, "
      "host has %u cores)\n",
      trace.size(), hw);

  std::vector<double> with_sketch, without_sketch, overhead, batch_fill;
  for (size_t threads = 1; threads <= 4; ++threads) {
    ovs::DatapathConfig with;
    with.num_queues = threads;
    with.nic_rate_mpps = 13.0;
    with.with_sketch = true;
    with.sketch_memory_bytes = KiB(512);
    const auto rw = ovs::RunDatapath(with, trace);
    with_sketch.push_back(rw.mpps);
    overhead.push_back(100.0 * rw.measurement_cpu_fraction);
    batch_fill.push_back(rw.avg_batch_fill);

    ovs::DatapathConfig without = with;
    without.with_sketch = false;
    without_sketch.push_back(ovs::RunDatapath(without, trace).mpps);
  }

  PrintHeader("Fig 15(a): throughput (Mpps) vs threads, NIC-capped");
  PrintColumns("config", {"1", "2", "3", "4"});
  PrintRow("OVS w/o", without_sketch, " %8.2f");
  PrintRow("OVS w/", with_sketch, " %8.2f");
  PrintRow("upd-cpu%", overhead, " %8.2f");
  PrintRow("batchfill", batch_fill, " %8.2f");

  // ---- Scale-out curve: uncapped, all cores -------------------------------
  std::vector<size_t> counts;
  for (size_t n = 1; n <= std::max<unsigned>(hw, 8); n *= 2) {
    counts.push_back(n);
  }
  if (counts.back() != hw && hw > counts.back()) counts.push_back(hw);

  BenchJson json("fig15a_scaling");
  json.Context("packets", std::to_string(trace.size()));
  json.Context("host_cores", std::to_string(hw));
  json.Context("workload", "caida-like zipf");

  std::vector<double> mpps_curve, eff_curve;
  double mpps_one = 0.0;
  for (const size_t n : counts) {
    ovs::ScaleoutConfig config;
    config.num_shards = n;
    config.num_workers = n;
    config.sketch_memory_bytes = KiB(512);
    // Best-of-3: throughput on a time-shared host is scheduler-noisy, and
    // the regression gate watches a ratio of two noisy numbers. The fastest
    // run is the least-perturbed one.
    double mpps = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      mpps = std::max(mpps, ovs::RunScaleout(config, trace).mpps);
    }
    if (n == 1) mpps_one = mpps;
    // Efficiency is per PHYSICAL core actually available: threads beyond
    // hw concurrency time-share, so they are excluded from the divisor.
    const double cores_used = static_cast<double>(std::min<size_t>(n, hw));
    const double eff = mpps_one > 0.0 ? mpps / (cores_used * mpps_one) : 0.0;
    mpps_curve.push_back(mpps);
    eff_curve.push_back(eff);
    const std::string key = "fig15a_scaling/t" + std::to_string(n);
    json.Metric(key + "/mpps", mpps);
    json.Metric(key + "/per_core_efficiency", eff);
  }

  std::vector<std::string> labels;
  for (const size_t n : counts) labels.push_back(std::to_string(n));
  PrintHeader("Scale-out: uncapped Mpps vs shard/worker threads");
  PrintColumns("threads", labels);
  PrintRow("mpps", mpps_curve, " %8.2f");
  PrintRow("per-core", eff_curve, " %8.2f");

  const char* json_path = std::getenv("COCO_BENCH_JSON");
  json.Write(json_path ? json_path : "BENCH_fig15a_scaling.json");

  std::printf(
      "\nExpected shape (paper): NIC-capped configs pin at line rate with "
      "<1.8%% sketch CPU;\nthe uncapped scale-out curve climbs with cores at "
      ">= 0.7 per-core efficiency at 8\nthreads (single-writer shards, no "
      "locks on the update path).\n");
  return 0;
}
