// Ablation: NitroSketch-style sampling on top of CocoSketch (§8 future
// work, implemented in core/sampled_cocosketch.h) — throughput vs F1 as the
// sampling probability drops.
#include "core/sampled_cocosketch.h"
#include "harness.h"

using namespace coco;
using namespace coco::bench;

int main() {
  const auto specs = keys::TupleKeySpec::DefaultSix();
  const size_t memory = KiB(500);
  const double fraction = 1e-4;

  const auto trace =
      trace::GenerateTrace(trace::TraceConfig::CaidaLike(BenchPackets()));
  const auto truth = trace::CountTrace(trace);
  const uint64_t threshold =
      static_cast<uint64_t>(fraction * static_cast<double>(truth.Total()));
  std::printf("Ablation: sampling front-end on CocoSketch (%zu pkts, %s)\n",
              trace.size(), FormatBytes(memory).c_str());
  std::printf("%-8s %10s %10s %10s\n", "p", "Mpps", "F1", "ARE");

  for (double p : {1.0, 0.5, 0.25, 0.1, 0.05}) {
    auto sketch =
        std::make_shared<core::SampledCocoSketch<FiveTuple>>(memory, p, 2);
    const double mpps = metrics::MeasureThroughput(
        trace, [sketch](const Packet& pk) { sketch->Update(pk.key, pk.weight); },
        [sketch] { sketch->Clear(); }, 3);

    sketch->Clear();
    for (const Packet& pk : trace) sketch->Update(pk.key, pk.weight);
    const auto decoded = sketch->Decode();
    std::vector<metrics::Accuracy> scores;
    for (const auto& spec : specs) {
      const auto exact = truth.Aggregate(spec);
      scores.push_back(metrics::ScoreThreshold(
          query::Aggregate(decoded, spec), exact.counts(), threshold));
    }
    const auto mean = metrics::MeanAccuracy(scores);
    std::printf("%-8.2f %10.2f %10.4f %10.4f\n", p, mpps, mean.f1, mean.are);
  }

  std::printf(
      "\nExpected shape: throughput rises as p falls (fewer sketch touches) "
      "while F1\ndecays gently until sampling noise approaches the HH "
      "threshold.\n");
  return 0;
}
