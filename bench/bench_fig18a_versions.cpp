// Figure 18(a): F1 Score of the three CocoSketch versions vs memory —
// basic (software), FPGA variant (hardware-friendly, exact division), and
// P4 variant (hardware-friendly, Tofino approximate division).
#include "harness.h"

using namespace coco;
using namespace coco::bench;

int main() {
  const auto specs = keys::TupleKeySpec::DefaultSix();
  const double fraction = 1e-4;
  const std::vector<size_t> memories = {KiB(500), KiB(1000), KiB(1500)};

  const auto trace =
      trace::GenerateTrace(trace::TraceConfig::CaidaLike(BenchPackets()));
  const auto truth = trace::CountTrace(trace);
  std::printf("Figure 18(a): CocoSketch versions vs memory (%zu pkts)\n",
              trace.size());

  std::vector<double> basic_f1, fpga_f1, p4_f1;
  for (size_t mem : memories) {
    auto basic = MakeCoco(mem, specs);
    auto fpga = MakeHwCoco(mem, specs, 2, core::DivisionMode::kExact, 0xc0c1,
                           "FPGA");
    auto p4 = MakeHwCoco(mem, specs, 2, core::DivisionMode::kApproximate,
                         0xc0c1, "P4");
    basic_f1.push_back(metrics::MeanAccuracy(
        RunHeavyHitters(basic, trace, truth, specs, fraction)).f1);
    fpga_f1.push_back(metrics::MeanAccuracy(
        RunHeavyHitters(fpga, trace, truth, specs, fraction)).f1);
    p4_f1.push_back(metrics::MeanAccuracy(
        RunHeavyHitters(p4, trace, truth, specs, fraction)).f1);
  }

  PrintHeader("Fig 18(a): F1 Score vs memory (KB)");
  PrintColumns("version", {"500", "1000", "1500"});
  PrintRow("Basic", basic_f1);
  PrintRow("FPGA", fpga_f1);
  PrintRow("P4", p4_f1);

  std::printf(
      "\nExpected shape (paper): basic best; hardware-friendly within 10%%; "
      "FPGA vs P4\ngap < 1%% (approximate division is nearly free); "
      "hardware-friendly > 90%% F1\nat 1MB.\n");
  return 0;
}
