// Figure 18(b): CocoSketch vs the full-key-sketch strawmen of §2.3 on two
// keys — SrcIP (the full key here) and its 24-bit prefix (partial key),
// 6 MB total memory, ARE over all distinct flows.
//
//   Ours      — one CocoSketch on SrcIP; /24 recovered by aggregation.
//   2*Elastic — one Elastic sketch per key (the per-key baseline).
//   Lossy     — one full-key Elastic; /24 recovered by aggregating only the
//               flows recorded in the heavy part.
//   Full      — one full-key Elastic; /24 recovered by querying ALL 256
//               possible full keys under each prefix and summing.
#include <cmath>

#include "harness.h"

using namespace coco;
using namespace coco::bench;

namespace {

double Are(const std::unordered_map<DynKey, uint64_t>& est,
           const trace::ExactCounter<DynKey>& exact) {
  double sum = 0;
  for (const auto& [key, true_size] : exact.counts()) {
    auto it = est.find(key);
    const uint64_t e = it == est.end() ? 0 : it->second;
    sum += std::abs(static_cast<double>(e) - static_cast<double>(true_size)) /
           static_cast<double>(true_size);
  }
  return sum / static_cast<double>(exact.DistinctFlows());
}

}  // namespace

int main() {
  const size_t memory = MiB(6);
  const keys::PrefixSpec full_spec(32), partial_spec(24);

  // This experiment needs a wide, lightly clustered SrcIP population (the
  // paper's CAIDA slice has ~10^6 sources): with few sources the "Full"
  // strawman's 256 light-part probes per prefix hit mostly-zero cells and
  // its error cannot accumulate.
  // Defaults to a longer trace than the other benches: the Full strawman's
  // error accumulation only shows once the light part carries real
  // occupancy, which needs >~500k distinct sources.
  trace::TraceConfig config =
      trace::TraceConfig::CaidaLike(BenchPackets(4'000'000));
  config.num_flows = std::max<size_t>(config.num_flows,
                                      config.num_packets / 8);
  config.num_networks = 8192;
  config.network_alpha = 0.3;
  const auto packets = trace::GenerateTrace(config);
  trace::ExactCounter<IPv4Key> truth;
  for (const Packet& p : packets) truth.Add(IPv4Key(p.key.src_ip()), p.weight);
  const auto exact32 = truth.Aggregate(full_spec);
  const auto exact24 = truth.Aggregate(partial_spec);
  std::printf(
      "Figure 18(b): full-key strawmen, %zu pkts, %s, %zu /32 flows, %zu /24 "
      "flows\n",
      packets.size(), FormatBytes(memory).c_str(), exact32.DistinctFlows(),
      exact24.DistinctFlows());

  // --- Ours: one CocoSketch on the full key -------------------------------
  double ours32, ours24;
  {
    core::CocoSketch<IPv4Key> coco(memory, 2);
    for (const Packet& p : packets) {
      coco.Update(IPv4Key(p.key.src_ip()), p.weight);
    }
    const auto table = coco.Decode();
    ours32 = Are(query::Aggregate(table, full_spec), exact32);
    ours24 = Are(query::Aggregate(table, partial_spec), exact24);
  }

  // --- 2*Elastic: one sketch per key ---------------------------------------
  double twoe32, twoe24;
  {
    sketch::ElasticSketch<DynKey> e32(memory / 2), e24(memory / 2);
    for (const Packet& p : packets) {
      const IPv4Key key(p.key.src_ip());
      e32.Update(full_spec.Apply(key), p.weight);
      e24.Update(partial_spec.Apply(key), p.weight);
    }
    twoe32 = Are(e32.Decode(), exact32);
    twoe24 = Are(e24.Decode(), exact24);
  }

  // --- Lossy & Full: one full-key Elastic ----------------------------------
  double lossy32, lossy24, full32, full24;
  {
    sketch::ElasticSketch<DynKey> elastic(memory);
    for (const Packet& p : packets) {
      elastic.Update(full_spec.Apply(IPv4Key(p.key.src_ip())), p.weight);
    }
    const auto decoded = elastic.Decode();
    lossy32 = Are(decoded, exact32);
    full32 = lossy32;  // on the full key both recover the same estimates

    // Lossy: aggregate only the recorded flows.
    std::unordered_map<DynKey, uint64_t> lossy_partial;
    for (const auto& [key, est] : decoded) {
      IPv4Key addr(LoadBE32(key.data()));
      lossy_partial[partial_spec.Apply(addr)] += est;
    }
    lossy24 = Are(lossy_partial, exact24);

    // Full: for each true /24, query all 256 host extensions.
    std::unordered_map<DynKey, uint64_t> full_partial;
    for (const auto& [prefix, true_size] : exact24.counts()) {
      const uint32_t base = static_cast<uint32_t>(LoadBE32(prefix.buf.data()));
      uint64_t sum = 0;
      for (uint32_t host = 0; host < 256; ++host) {
        sum += elastic.Query(full_spec.Apply(IPv4Key(base | host)));
      }
      full_partial[prefix] = sum;
    }
    full24 = Are(full_partial, exact24);
  }

  PrintHeader("Fig 18(b): ARE on full key (/32) and partial key (/24)");
  std::printf("%-12s %10s %10s\n", "solution", "32-bit", "24-bit");
  std::printf("%-12s %10.4f %10.4f\n", "Ours", ours32, ours24);
  std::printf("%-12s %10.4f %10.4f\n", "2*Elastic", twoe32, twoe24);
  std::printf("%-12s %10.4f %10.4f\n", "Lossy", lossy32, lossy24);
  std::printf("%-12s %10.4f %10.4f\n", "Full", full32, full24);

  std::printf(
      "\nExpected shape (paper): Ours accurate on BOTH keys (<0.02) while "
      "every\nfull-key-sketch strawman is ~an order of magnitude worse: "
      "Lossy loses the\nlight-part mass, Full accumulates one noisy probe "
      "per possible host (>1 ARE\nat the paper's 27M-packet scale; raise "
      "COCO_BENCH_PACKETS to push the light\npart into saturation and "
      "reproduce the blow-up).\n");
  return 0;
}
