// Figure 15(d): P4 (Tofino) resource usage — CocoSketch (one instance
// serving 6 partial keys) vs Elastic (one instance = one key) vs 4*Elastic
// (the most the switch can hold).
#include <cstdio>

#include "hw/rmt_model.h"

using namespace coco::hw;

int main() {
  const SwitchSpec tofino = SwitchSpec::Tofino();

  auto usage_of = [&](const SketchResourceSpec& spec, size_t copies) {
    RmtPipelineModel model(tofino);
    for (size_t i = 0; i < copies; ++i) {
      if (!model.Place(spec)) {
        std::fprintf(stderr, "placement failed for %s copy %zu\n",
                     spec.name.c_str(), i + 1);
        break;
      }
    }
    return model.Usage();
  };

  const auto coco = usage_of(SketchResourceSpec::CocoSketch(2), 1);
  const auto elastic1 = usage_of(SketchResourceSpec::Elastic(), 1);
  const auto elastic4 = usage_of(SketchResourceSpec::Elastic(), 4);

  std::printf("Figure 15(d): P4 resource usage fractions (Tofino)\n");
  std::printf("%-12s %10s %10s %10s\n", "design", "SRAM", "MapRAM", "ALUs");
  auto print = [](const char* name, const UsageFractions& u) {
    std::printf("%-12s %9.2f%% %9.2f%% %9.2f%%\n", name, 100.0 * u.sram,
                100.0 * u.map_ram, 100.0 * u.stateful_alus);
  };
  print("Ours", coco);
  print("Elastic", elastic1);
  print("4*Elastic", elastic4);

  std::printf(
      "\nExpected (paper §7.4): Ours 6.25%% stateful ALUs and 6.25%% Map RAM "
      "for 6 keys;\nElastic 18.75%% ALUs per key, 4 keys max (75%% ALUs, "
      "30.56%% Map RAM).\n");
  return 0;
}
