// Workload inspection tool: prints the statistics that matter for sketch
// sizing — flow counts, heavy-tail shape, entropy, per-key cardinalities —
// for a trace file (library binary format) or, with no argument, a freshly
// generated CAIDA-like workload. Feeds directly into the SketchPlanner:
// the tool ends by printing the geometry the planner derives for the trace.
//
// Usage:  ./build/examples/trace_inspect [trace.cocotrc]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/sizes.h"
#include "control/planner.h"
#include "keys/key_spec.h"
#include "metrics/distribution.h"
#include "trace/generators.h"
#include "trace/ground_truth.h"
#include "trace/trace_io.h"

using namespace coco;

int main(int argc, char** argv) {
  std::vector<Packet> packets;
  if (argc > 1) {
    bool ok = false;
    packets = trace::ReadTrace(argv[1], &ok);
    if (!ok) {
      std::fprintf(stderr, "failed to read %s\n", argv[1]);
      return 1;
    }
    std::printf("trace: %s\n", argv[1]);
  } else {
    packets = trace::GenerateTrace(trace::TraceConfig::CaidaLike(1'000'000));
    std::printf("trace: generated CAIDA-like\n");
  }

  const auto truth = trace::CountTrace(packets);
  std::printf("packets           : %zu\n", packets.size());
  std::printf("distinct 5-tuples : %zu\n", truth.DistinctFlows());
  std::printf("entropy           : %.3f bits\n",
              metrics::EmpiricalEntropy(truth.counts()));

  // Tail shape: share of traffic carried by the top 0.1% / 1% / 10% flows.
  std::vector<uint64_t> sizes;
  sizes.reserve(truth.DistinctFlows());
  for (const auto& [key, count] : truth.counts()) sizes.push_back(count);
  std::sort(sizes.rbegin(), sizes.rend());
  const double total = static_cast<double>(truth.Total());
  for (double frac : {0.001, 0.01, 0.1}) {
    const size_t n = std::max<size_t>(1, static_cast<size_t>(
                                             frac * sizes.size()));
    uint64_t mass = 0;
    for (size_t i = 0; i < n; ++i) mass += sizes[i];
    std::printf("top %5.1f%% flows  : %5.1f%% of traffic\n", 100 * frac,
                100.0 * static_cast<double>(mass) / total);
  }

  // Cardinality per partial key.
  std::printf("\ndistinct flows per partial key:\n");
  for (const auto& spec : keys::TupleKeySpec::DefaultSix()) {
    std::printf("  %-16s %8zu\n", spec.name().c_str(),
                truth.Aggregate(spec).DistinctFlows());
  }

  // Planner: geometry for a 99%-recall heavy-hitter task at threshold 1e-4.
  control::SketchPlanner planner(17);
  control::TaskRequirement task;
  task.name = "heavy hitters";
  task.heavy_fraction = 1e-4;
  task.recall_target = 0.99;
  task.epsilon = 0.1;
  task.delta = 0.05;
  const auto plan = planner.Plan(task);
  std::printf(
      "\nplanner: for 99%% recall at threshold 1e-4 use d=%zu, l=%zu "
      "(%s; predicted\nrecall %.4f)\n",
      plan.d, plan.l, FormatBytes(plan.memory_bytes).c_str(),
      plan.predicted_recall);
  return 0;
}
