// DDoS / hierarchical-heavy-hitter example (the §2.2 security use case).
//
// A volumetric attack is injected as many spoofed sources inside one /16:
// no single source IP is heavy, so flat per-IP heavy hitters miss it — but
// the 16-bit prefix level of an arbitrary-partial-key query exposes it
// immediately. One CocoSketch over the 32-bit source key answers all 33
// prefix levels.
//
// Build & run:  ./build/examples/ddos_hierarchy
#include <cstdio>

#include "common/rng.h"
#include "common/sizes.h"
#include "core/cocosketch.h"
#include "keys/key_spec.h"
#include "query/flow_table.h"
#include "trace/generators.h"

using namespace coco;

int main() {
  // Background: a normal CAIDA-like workload.
  const auto background =
      trace::GenerateTrace(trace::TraceConfig::CaidaLike(800'000));

  // Attack: 200k packets from random hosts inside 203.0.0.0/16 (each host
  // sends only a couple of packets — invisible at the /32 level).
  Rng rng(0xa77ac);
  core::CocoSketch<IPv4Key> sketch(KiB(500), 2);
  uint64_t total = 0;
  for (const Packet& p : background) {
    sketch.Update(IPv4Key(p.key.src_ip()), p.weight);
    total += p.weight;
  }
  const uint32_t attack_net = 0xcb000000;  // 203.0.0.0/16
  for (int i = 0; i < 200'000; ++i) {
    const uint32_t spoofed =
        attack_net | static_cast<uint32_t>(rng.NextBelow(65536));
    sketch.Update(IPv4Key(spoofed), 1);
    ++total;
  }

  const auto table = sketch.Decode();
  std::printf("one sketch, %zu recorded sources, %llu packets total\n\n",
              table.size(), static_cast<unsigned long long>(total));

  // Flat heavy hitters at /32: the attack is invisible.
  const uint64_t threshold = total / 100;  // 1% of traffic
  std::printf("heavy sources at /32 (>= 1%% of traffic):\n");
  size_t flat_hits = 0;
  for (const auto& [key, size] : query::TopRows(table, 5)) {
    if (size < threshold) continue;
    std::printf("  %-16s %10llu\n", key.ToString().c_str(),
                static_cast<unsigned long long>(size));
    ++flat_hits;
  }
  if (flat_hits == 0) std::printf("  (none - attack hides below threshold)\n");

  // Walk the prefix hierarchy: the /16 aggregate lights up.
  std::printf("\nheavy prefixes per level (>= 1%% of traffic):\n");
  for (uint8_t bits : {24, 20, 16, 12, 8}) {
    const auto level =
        query::Aggregate(table, keys::PrefixSpec(bits));
    const auto heavy = query::FilterThreshold(level, threshold);
    std::printf("  /%-3u: %3zu heavy prefixes", bits, heavy.size());
    const auto top = query::TopRows(heavy, 1);
    if (!top.empty()) {
      // Reconstruct the dotted prefix for display.
      uint32_t addr = 0;
      for (size_t b = 0; b < top[0].first.size(); ++b) {
        addr |= static_cast<uint32_t>(top[0].first.data()[b])
                << (24 - 8 * b);
      }
      std::printf("   biggest: %s/%u with %llu pkts",
                  Ipv4ToString(addr).c_str(), bits,
                  static_cast<unsigned long long>(top[0].second));
    }
    std::printf("\n");
  }

  std::printf(
      "\n=> the spoofed /16 (203.0.x.x) dominates the prefix levels even "
      "though no\n   single source is heavy — the arbitrary partial key "
      "query at work.\n");
  return 0;
}
