// cocotool — command-line front door to the library, tying the pieces into
// an operator workflow:
//
//   cocotool generate <out.cocotrc> [packets] [caida|mawi]
//       synthesize a workload and write it in the binary trace format
//   cocotool measure <in.cocotrc> <out.state> [memoryKB] [d]
//       run the trace through a CocoSketch and serialize the sketch state
//       (what a data plane would ship to the controller)
//   cocotool query <in.state> "<SQL>" [memoryKB] [d]
//       restore the state and answer a §4.3 SQL query
//   cocotool stats <in.state> [memoryKB] [d]
//       restore the state and dump occupancy/load-factor introspection as a
//       metrics-snapshot JSON (see docs/OBSERVABILITY.md)
//   cocotool merge <out.state> "<SQL|->" <in1.state> <in2.state> [...]
//       sketch-level merge (core/merge.h) of saved state images from
//       several vantage points, write the merged image, and answer a SQL
//       query over it ("-" skips the query); geometry is read from the
//       image headers, so all inputs must have been measured with the same
//       memKB and d, and hash seed (aggregating across seeds is refused —
//       bucket indices are incomparable)
//   cocotool rotate <in.state> <out.state> [newseedhex]
//       operator-commanded seed rotation (docs/ROBUSTNESS.md): restore the
//       image, epoch-swap it onto a new hash seed (fresh entropy unless
//       newseedhex is given), verify mass conservation, write the re-keyed
//       image
//
// State images carry the hash seed they were sealed with (format v3), and
// every subcommand restores with the seed read from the image header — a
// state file measured under one seed is never silently decoded under
// another.
//
// Example session:
//   cocotool generate /tmp/t.cocotrc 500000
//   cocotool measure /tmp/t.cocotrc /tmp/t.state 500 2
//   cocotool query /tmp/t.state "SELECT SrcIP/16, SUM(Size) FROM flows \
//       GROUP BY SrcIP/16 ORDER BY SUM(Size) DESC LIMIT 10" 500 2
//   cocotool stats /tmp/t.state 500 2
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sizes.h"
#include "core/cocosketch.h"
#include "core/merge.h"
#include "core/seed_rotation.h"
#include "core/state_image.h"
#include "obs/sketch_metrics.h"
#include "obs/snapshot.h"
#include "query/sql.h"
#include "trace/generators.h"
#include "trace/trace_io.h"

using namespace coco;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cocotool generate <out.cocotrc> [packets] [caida|mawi]\n"
               "  cocotool measure <in.cocotrc> <out.state> [memKB] [d]\n"
               "  cocotool query <in.state> \"<SQL>\" [memKB] [d]\n"
               "  cocotool stats <in.state> [memKB] [d]\n"
               "  cocotool merge <out.state> \"<SQL|->\" <in1.state> "
               "<in2.state> [...]\n"
               "  cocotool rotate <in.state> <out.state> [newseedhex]\n");
  return 2;
}

// Restores `image` into a sketch whose hash seed comes from the image's own
// header (memKB/d stay caller-chosen so a geometry typo still fails loudly).
std::optional<core::CocoSketch<FiveTuple>> RestoreWithImageSeed(
    const std::vector<uint8_t>& image, size_t mem, size_t d,
    const char* path) {
  uint64_t hdr_d = 0, hdr_l = 0, seed = 0;
  if (!core::PeekStateImageHeader(image, &hdr_d, &hdr_l, &seed)) {
    std::fprintf(stderr, "%s is not a valid state image\n", path);
    return std::nullopt;
  }
  core::CocoSketch<FiveTuple> sketch(mem, d, seed);
  if (!sketch.RestoreState(image)) {
    std::fprintf(stderr,
                 "state/geometry mismatch: pass the memKB and d used at "
                 "measure time\n");
    return std::nullopt;
  }
  return sketch;
}

bool WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

bool ReadFile(const std::string& path, std::vector<uint8_t>* bytes) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) return false;
  bytes->resize(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes->data()),
          static_cast<std::streamsize>(bytes->size()));
  return in.good();
}

int Generate(int argc, char** argv) {
  if (argc < 3) return Usage();
  const size_t packets = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                  : 500'000;
  const bool mawi = argc > 4 && std::strcmp(argv[4], "mawi") == 0;
  const auto trace = trace::GenerateTrace(
      mawi ? trace::TraceConfig::MawiLike(packets)
           : trace::TraceConfig::CaidaLike(packets));
  if (!trace::WriteTrace(argv[2], trace)) {
    std::fprintf(stderr, "cannot write %s\n", argv[2]);
    return 1;
  }
  std::printf("wrote %zu packets (%s model) to %s\n", trace.size(),
              mawi ? "MAWI" : "CAIDA", argv[2]);
  return 0;
}

int Measure(int argc, char** argv) {
  if (argc < 4) return Usage();
  bool ok = false;
  const auto trace = trace::ReadTrace(argv[2], &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read trace %s\n", argv[2]);
    return 1;
  }
  const size_t mem = KiB(argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 500);
  const size_t d = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 2;
  core::CocoSketch<FiveTuple> sketch(mem, d);
  for (const Packet& p : trace) sketch.Update(p.key, p.weight);
  if (!WriteFile(argv[3], sketch.SerializeState())) {
    std::fprintf(stderr, "cannot write state %s\n", argv[3]);
    return 1;
  }
  std::printf("measured %zu packets into %s (d=%zu, %s), state -> %s\n",
              trace.size(), FormatBytes(sketch.MemoryBytes()).c_str(), d,
              argv[2], argv[3]);
  return 0;
}

int RunQuery(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::vector<uint8_t> image;
  if (!ReadFile(argv[2], &image)) {
    std::fprintf(stderr, "cannot read state %s\n", argv[2]);
    return 1;
  }
  const size_t mem = KiB(argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 500);
  const size_t d = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 2;
  auto sketch = RestoreWithImageSeed(image, mem, d, argv[2]);
  if (!sketch) return 1;
  std::string error;
  const auto result = query::sql::Query(argv[3], sketch->Decode(), &error);
  if (!result) {
    std::fprintf(stderr, "SQL error: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s(%zu rows)\n", query::sql::FormatResult(*result).c_str(),
              result->rows.size());
  return 0;
}

int Stats(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::vector<uint8_t> image;
  if (!ReadFile(argv[2], &image)) {
    std::fprintf(stderr, "cannot read state %s\n", argv[2]);
    return 1;
  }
  const size_t mem = KiB(argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 500);
  const size_t d = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2;
  auto sketch = RestoreWithImageSeed(image, mem, d, argv[2]);
  if (!sketch) return 1;
  obs::Registry registry;
  obs::PublishSketchStats(&registry, "sketch", sketch->Stats());
  std::fputs(obs::ToJson(obs::CaptureSnapshot(registry)).c_str(), stdout);
  return 0;
}

// Sketch-level merge of saved state images (network-wide aggregation,
// docs/NETWIDE.md): restores each image into a sketch sized from its own
// header, merges with core::MergeSketches, writes the merged image, and
// optionally answers one SQL query over the merged decode.
int Merge(int argc, char** argv) {
  if (argc < 5) return Usage();
  const std::string out_path = argv[2];
  const std::string sql = argv[3];
  Rng rng(0x6d657267);
  std::optional<core::CocoSketch<FiveTuple>> merged;
  for (int i = 4; i < argc; ++i) {
    std::vector<uint8_t> image;
    if (!ReadFile(argv[i], &image)) {
      std::fprintf(stderr, "cannot read state %s\n", argv[i]);
      return 1;
    }
    uint64_t d = 0, l = 0, seed = 0;
    if (!core::PeekStateImageHeader(image, &d, &l, &seed)) {
      std::fprintf(stderr, "%s is not a valid state image\n", argv[i]);
      return 1;
    }
    const size_t mem = static_cast<size_t>(d * l) *
                       core::CocoSketch<FiveTuple>::BucketBytes();
    core::CocoSketch<FiveTuple> shard(mem, static_cast<size_t>(d), seed);
    if (!shard.RestoreState(image)) {
      std::fprintf(stderr, "corrupt or mismatched state image %s\n", argv[i]);
      return 1;
    }
    if (!merged) {
      merged.emplace(mem, d, seed);
      merged->RestoreState(image);
      continue;
    }
    const auto stats = core::MergeSketches(&*merged, shard, &rng);
    if (stats.seed_mismatch) {
      std::fprintf(stderr,
                   "hash seed mismatch: %s was measured under seed %016llx, "
                   "the first image under %016llx — bucket positions are "
                   "incomparable across seeds (rotate one side first, or "
                   "re-measure with a shared COCO_SEED)\n",
                   argv[i], static_cast<unsigned long long>(shard.seed()),
                   static_cast<unsigned long long>(merged->seed()));
      return 1;
    }
    if (!stats.ok) {
      std::fprintf(stderr,
                   "geometry mismatch: %s differs from the first image "
                   "(all inputs need the same memKB and d)\n",
                   argv[i]);
      return 1;
    }
    std::printf("merged %s: %llu matched, %llu copied, %llu conflicts\n",
                argv[i], static_cast<unsigned long long>(stats.matched),
                static_cast<unsigned long long>(stats.copied),
                static_cast<unsigned long long>(stats.conflicts));
  }
  if (!WriteFile(out_path, merged->SerializeState())) {
    std::fprintf(stderr, "cannot write state %s\n", out_path.c_str());
    return 1;
  }
  std::printf("merged %d images (%s, d=%zu) -> %s, total mass %llu\n",
              argc - 4, FormatBytes(merged->MemoryBytes()).c_str(),
              merged->d(), out_path.c_str(),
              static_cast<unsigned long long>(merged->TotalValue()));
  if (sql != "-") {
    std::string error;
    const auto result = query::sql::Query(sql, merged->Decode(), &error);
    if (!result) {
      std::fprintf(stderr, "SQL error: %s\n", error.c_str());
      return 1;
    }
    std::printf("%s(%zu rows)\n", query::sql::FormatResult(*result).c_str(),
                result->rows.size());
  }
  return 0;
}

// Operator-commanded seed rotation (docs/ROBUSTNESS.md): the offline twin of
// the datapath's automatic response — rotate a saved image onto a fresh seed
// so a leaked/compromised seed stops being useful, preserving the decoded
// estimates and total mass.
int Rotate(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::vector<uint8_t> image;
  if (!ReadFile(argv[2], &image)) {
    std::fprintf(stderr, "cannot read state %s\n", argv[2]);
    return 1;
  }
  uint64_t d = 0, l = 0, seed = 0;
  if (!core::PeekStateImageHeader(image, &d, &l, &seed)) {
    std::fprintf(stderr, "%s is not a valid state image\n", argv[2]);
    return 1;
  }
  const size_t mem = static_cast<size_t>(d * l) *
                     core::CocoSketch<FiveTuple>::BucketBytes();
  core::CocoSketch<FiveTuple> sketch(mem, static_cast<size_t>(d), seed);
  if (!sketch.RestoreState(image)) {
    std::fprintf(stderr, "corrupt or mismatched state image %s\n", argv[2]);
    return 1;
  }
  const uint64_t new_seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 16) : RandomSeed();
  if (new_seed == 0 || new_seed == seed) {
    std::fprintf(stderr, "new seed must be nonzero and differ from %016llx\n",
                 static_cast<unsigned long long>(seed));
    return 1;
  }
  const core::RotationStats stats = core::RotateSeed(&sketch, new_seed);
  std::printf("rotated %016llx -> %016llx: %zu flows replayed, mass %llu -> "
              "%llu (%s)\n",
              static_cast<unsigned long long>(stats.old_seed),
              static_cast<unsigned long long>(stats.new_seed),
              stats.flows_replayed,
              static_cast<unsigned long long>(stats.mass_before),
              static_cast<unsigned long long>(stats.mass_after),
              stats.mass_conserved ? "mass conserved" : "CONSERVATION FAILED");
  if (!WriteFile(argv[3], sketch.SerializeState())) {
    std::fprintf(stderr, "cannot write state %s\n", argv[3]);
    return 1;
  }
  return stats.mass_conserved ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    // With no arguments run a self-contained demo of the whole workflow.
    std::printf("no subcommand given - running the demo workflow\n\n");
    const std::string trc = "/tmp/cocotool_demo.cocotrc";
    const std::string st = "/tmp/cocotool_demo.state";
    char* gen[] = {argv[0], const_cast<char*>("generate"),
                   const_cast<char*>(trc.c_str()),
                   const_cast<char*>("400000")};
    if (Generate(4, gen) != 0) return 1;
    char* mea[] = {argv[0], const_cast<char*>("measure"),
                   const_cast<char*>(trc.c_str()),
                   const_cast<char*>(st.c_str())};
    if (Measure(4, mea) != 0) return 1;
    char* qry[] = {argv[0], const_cast<char*>("query"),
                   const_cast<char*>(st.c_str()),
                   const_cast<char*>(
                       "SELECT SrcIP, SUM(Size) FROM flows GROUP BY SrcIP "
                       "ORDER BY SUM(Size) DESC LIMIT 5")};
    if (RunQuery(4, qry) != 0) return 1;
    std::printf("\nsketch occupancy stats:\n");
    char* sta[] = {argv[0], const_cast<char*>("stats"),
                   const_cast<char*>(st.c_str())};
    return Stats(3, sta);
  }
  const std::string cmd = argv[1];
  if (cmd == "generate") return Generate(argc, argv);
  if (cmd == "measure") return Measure(argc, argv);
  if (cmd == "query") return RunQuery(argc, argv);
  if (cmd == "stats") return Stats(argc, argv);
  if (cmd == "merge") return Merge(argc, argv);
  if (cmd == "rotate") return Rotate(argc, argv);
  return Usage();
}
