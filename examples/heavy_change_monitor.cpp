// Heavy-change monitoring example: two measurement windows, one CocoSketch
// per window, change detection on any partial key after the fact.
//
// Also demonstrates trace persistence: the two windows are written to and
// re-read from disk in the library's binary trace format, the way an
// operator would replay captured epochs.
//
// Build & run:  ./build/examples/heavy_change_monitor
#include <cstdio>
#include <string>

#include "common/sizes.h"
#include "core/cocosketch.h"
#include "keys/key_spec.h"
#include "query/flow_table.h"
#include "trace/generators.h"
#include "trace/trace_io.h"

using namespace coco;

int main() {
  // Two epochs with 40% flow churn between them.
  const auto epochs =
      trace::GenerateChurnPair(trace::TraceConfig::CaidaLike(500'000), 0.4);

  // Persist and reload — the epochs round-trip through the trace format.
  const std::string dir = "/tmp";
  trace::WriteTrace(dir + "/epoch_before.cocotrc", epochs.before);
  trace::WriteTrace(dir + "/epoch_after.cocotrc", epochs.after);
  bool ok_b = false, ok_a = false;
  const auto before = trace::ReadTrace(dir + "/epoch_before.cocotrc", &ok_b);
  const auto after = trace::ReadTrace(dir + "/epoch_after.cocotrc", &ok_a);
  if (!ok_b || !ok_a) {
    std::fprintf(stderr, "trace round-trip failed\n");
    return 1;
  }
  std::printf("replayed %zu + %zu packets from disk\n\n", before.size(),
              after.size());

  // One sketch per window.
  core::CocoSketch<FiveTuple> w1(KiB(500), 2, /*seed=*/1);
  core::CocoSketch<FiveTuple> w2(KiB(500), 2, /*seed=*/2);
  for (const Packet& p : before) w1.Update(p.key, p.weight);
  for (const Packet& p : after) w2.Update(p.key, p.weight);
  const auto t1 = w1.Decode();
  const auto t2 = w2.Decode();

  // Change detection on three different partial keys from the same sketches.
  const uint64_t threshold = before.size() / 500;  // 0.2% of window volume
  for (const auto& spec :
       {keys::TupleKeySpec::FullTuple(), keys::TupleKeySpec::SrcIp(),
        keys::TupleKeySpec::SrcDstIp()}) {
    const auto diff = query::AbsDiff(query::Aggregate(t1, spec),
                                     query::Aggregate(t2, spec));
    const auto heavy = query::FilterThreshold(diff, threshold);
    std::printf("heavy changes on %-14s : %4zu flows (top: ",
                spec.name().c_str(), heavy.size());
    const auto top = query::TopRows(heavy, 1);
    if (top.empty()) {
      std::printf("none)\n");
    } else {
      std::printf("%s, delta %llu)\n", top[0].first.ToHex().c_str(),
                  static_cast<unsigned long long>(top[0].second));
    }
  }

  std::printf(
      "\n=> the same two decoded tables answered change queries on three "
      "keys that\n   were never configured before measurement.\n");
  return 0;
}
