// netwide_monitor — the network-wide aggregation subsystem end to end
// (docs/NETWIDE.md): N agents, each measuring a slice of a CAIDA-like
// workload, sync their sketches to a collector over several epochs; the
// collector serves §4.3 SQL queries over the sketch-level merge of every
// vantage point.
//
//   netwide_monitor [agents] [packets] [loopback|tcp] [epochs]
//
// In loopback mode the run doubles as a fault drill (the CI smoke job):
// frame faults — a drop, a corruption, a duplicate, a delayed reorder — are
// injected into the first links, and agent 1 is restarted mid-run with a
// fresh sketch. The protocol must converge anyway; the process exits
// nonzero if the conservation invariant (reported mass == replica mass ==
// merged mass) does not hold at the end, or if replica state diverges from
// the agents' sketches.
//
// In tcp mode the same protocol runs over real sockets on 127.0.0.1 (no
// fault injection — TCP's own loss handling plus the ack/resend layer are
// under test). If the environment forbids local sockets the run reports
// SKIP and exits 0.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/sizes.h"
#include "core/cocosketch.h"
#include "net/agent.h"
#include "net/collector.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "ovs/fault.h"
#include "trace/generators.h"

using namespace coco;

namespace {

using Sketch = core::CocoSketch<FiveTuple>;
using NetAgent = net::Agent<Sketch>;
using NetCollector = net::Collector<Sketch>;

constexpr size_t kAgentMem = KiB(32);

struct Node {
  std::unique_ptr<Sketch> sketch;
  std::unique_ptr<net::AgentTransport> transport;
  std::unique_ptr<NetAgent> agent;
};

void StartAgent(Node* node, uint32_t id, obs::Registry* registry) {
  node->sketch = std::make_unique<Sketch>(kAgentMem, 2);
  NetAgent::Options o;
  o.id = id;
  o.resend_after_ticks = 4;
  node->agent = std::make_unique<NetAgent>(o, node->sketch.get(),
                                           node->transport.get(), registry);
}

// Ticks everyone until every agent's current epoch is acknowledged (or the
// budget runs out — the caller checks conservation either way).
void Converge(std::vector<Node>* nodes, NetCollector* collector,
              int max_ticks = 3000) {
  for (int t = 0; t < max_ticks; ++t) {
    bool synced = true;
    for (auto& n : *nodes) {
      n.agent->Tick();
      synced &= n.agent->Synced() && n.agent->last_acked_epoch() > 0;
    }
    collector->Tick();
    if (synced) return;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n_agents =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  const size_t packets =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200'000;
  const bool tcp = argc > 3 && std::strcmp(argv[3], "tcp") == 0;
  const size_t epochs = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 4;
  if (n_agents == 0 || epochs == 0) {
    std::fprintf(stderr,
                 "usage: netwide_monitor [agents] [packets] [loopback|tcp] "
                 "[epochs]\n");
    return 2;
  }

  obs::Registry registry;
  NetCollector::Options copt;
  copt.memory_bytes = kAgentMem;
  copt.d = 2;

  // Fault drill (loopback only): hello is frame 1 on each link, the first
  // sync frame is 2.
  ovs::FaultPlan plan;
  plan.frames.push_back({1, 2, ovs::FrameFault::Action::kDrop});
  if (n_agents >= 2) {
    plan.frames.push_back({2, 2, ovs::FrameFault::Action::kCorrupt});
  }
  if (n_agents >= 3) {
    plan.frames.push_back({3, 2, ovs::FrameFault::Action::kDuplicate});
    plan.frames.push_back({3, 3, ovs::FrameFault::Action::kDelay, 2});
  }

  net::LoopbackHub hub(plan);
  std::unique_ptr<net::TcpCollectorTransport> tcp_collector;
  std::unique_ptr<net::CollectorTransport> loop_collector;
  net::CollectorTransport* collector_transport = nullptr;
  if (tcp) {
    tcp_collector = std::make_unique<net::TcpCollectorTransport>(0);
    if (!tcp_collector->ok()) {
      std::printf("SKIP: cannot bind a local TCP socket in this "
                  "environment\n");
      return 0;
    }
    collector_transport = tcp_collector.get();
  } else {
    loop_collector = std::make_unique<net::LoopbackCollectorTransport>(&hub);
    collector_transport = loop_collector.get();
  }
  NetCollector collector(copt, collector_transport, &registry);

  std::vector<Node> nodes(n_agents);
  for (size_t i = 0; i < n_agents; ++i) {
    const uint32_t id = static_cast<uint32_t>(i + 1);
    if (tcp) {
      nodes[i].transport = std::make_unique<net::TcpAgentTransport>(
          "127.0.0.1", tcp_collector->port());
    } else {
      nodes[i].transport =
          std::make_unique<net::LoopbackAgentTransport>(&hub, id);
    }
    StartAgent(&nodes[i], id, &registry);
  }
  if (tcp) {
    // Let the nonblocking connects finish before the first export.
    bool all_connected = false;
    for (int t = 0; t < 500 && !all_connected; ++t) {
      all_connected = true;
      for (auto& n : nodes) {
        n.agent->Tick();
        all_connected &= n.transport->Connected();
      }
      collector.Tick();
    }
    if (!all_connected) {
      std::printf("SKIP: local TCP connect not permitted in this "
                  "environment\n");
      return 0;
    }
  }

  const auto trace =
      trace::GenerateTrace(trace::TraceConfig::CaidaLike(packets));
  std::printf("netwide_monitor: %zu agents, %zu packets, %zu epochs, %s\n",
              n_agents, trace.size(), epochs, tcp ? "tcp" : "loopback");

  const size_t per_epoch = trace.size() / epochs;
  for (size_t e = 0; e < epochs; ++e) {
    const size_t begin = e * per_epoch;
    const size_t end = e + 1 == epochs ? trace.size() : begin + per_epoch;
    for (size_t i = begin; i < end; ++i) {
      nodes[i % n_agents].sketch->Update(trace[i].key, trace[i].weight);
    }
    for (auto& n : nodes) n.agent->ExportEpoch();
    Converge(&nodes, &collector);
    std::printf("  epoch %zu synced: collector mass %llu\n", e + 1,
                static_cast<unsigned long long>(
                    collector.CheckConservation().replica_mass));

    if (!tcp && e == 0 && epochs >= 3) {
      // Restart drill: agent 1 comes back with a fresh sketch and a reset
      // epoch counter; nacked deltas must drive it to a full resync.
      std::printf("  restarting agent 1 (fresh sketch, epoch counter "
                  "reset)\n");
      nodes[0].agent.reset();
      StartAgent(&nodes[0], 1, &registry);
    }
  }
  // The restarted agent's epoch counter may still trail the collector's
  // history; extra (empty) epochs push it past and let the full image land.
  for (int extra = 0;
       extra < 8 && collector.LastEpochOf(1) != nodes[0].agent->epoch();
       ++extra) {
    nodes[0].agent->ExportEpoch();
    Converge(&nodes, &collector);
  }

  // ---- Verdict: conservation + replica fidelity ---------------------------
  uint64_t sketch_mass = 0;
  for (auto& n : nodes) sketch_mass += n.sketch->TotalValue();
  const auto c = collector.CheckConservation();
  std::printf("\nconservation: reported=%llu replica=%llu merged=%llu "
              "(agents' own sketches hold %llu)\n",
              static_cast<unsigned long long>(c.reported_mass),
              static_cast<unsigned long long>(c.replica_mass),
              static_cast<unsigned long long>(c.merged_mass),
              static_cast<unsigned long long>(sketch_mass));
  bool ok = c.Holds();
  if (c.replica_mass != sketch_mass) ok = false;

  std::string error;
  const auto by_src = collector.Query(
      "SELECT SrcIP, SUM(Size) FROM flows GROUP BY SrcIP "
      "ORDER BY SUM(Size) DESC LIMIT 5",
      &error);
  const auto by_prefix = collector.Query(
      "SELECT SrcIP/16, SUM(Size) FROM flows GROUP BY SrcIP/16 "
      "ORDER BY SUM(Size) DESC LIMIT 5",
      &error);
  if (!by_src || !by_prefix) {
    std::fprintf(stderr, "SQL error: %s\n", error.c_str());
    ok = false;
  } else {
    std::printf("\nnetwork-wide top sources:\n%s",
                query::sql::FormatResult(*by_src).c_str());
    std::printf("\nnetwork-wide top /16 prefixes:\n%s",
                query::sql::FormatResult(*by_prefix).c_str());
  }

  if (!tcp) {
    const auto stats = hub.Stats();
    std::printf("\nlink faults fired: %llu (dropped %llu, corrupted %llu, "
                "duplicated %llu, delayed %llu)\n",
                static_cast<unsigned long long>(
                    hub.faults().frame_faults_fired()),
                static_cast<unsigned long long>(stats.frames_dropped),
                static_cast<unsigned long long>(stats.frames_corrupted),
                static_cast<unsigned long long>(stats.frames_duplicated),
                static_cast<unsigned long long>(stats.frames_delayed));
  }
  std::printf("\nmetrics snapshot:\n%s\n",
              obs::ToJson(obs::CaptureSnapshot(registry)).c_str());
  std::printf("netwide_monitor: %s\n", ok ? "CONSERVATION OK" : "FAILED");
  return ok ? 0 : 1;
}
