// Hardware deployment walkthrough: compile the hardware-friendly CocoSketch
// to the mini P4 IR, validate it against the per-stage resource budgets,
// print the pipeline listing, execute packets through the interpreter, and
// answer a partial-key query from the decoded register state — the full
// §6.2 story in one runnable program.
//
// Build & run:  ./build/examples/p4_pipeline
#include <cstdio>

#include "common/sizes.h"
#include "keys/key_spec.h"
#include "p4/coco_program.h"
#include "query/flow_table.h"
#include "trace/generators.h"

using namespace coco;

int main() {
  // Compile for d = 2 and 500 KB of register state.
  p4::P4CocoSketch sketch(KiB(500), 2, /*approx_division=*/true);
  std::printf("%s", p4::Dump(sketch.program()).c_str());

  const std::string diag = p4::Validate(sketch.program(), p4::StageBudget{});
  std::printf("\nstage validation: %s\n",
              diag.empty() ? "OK (fits per-stage ALU/hash/math/RNG budgets)"
                           : diag.c_str());
  std::printf("stages used: %zu of 12\n\n", sketch.program().stages.size());

  // Run traffic through the interpreted pipeline.
  const auto packets =
      trace::GenerateTrace(trace::TraceConfig::CaidaLike(300'000));
  for (const Packet& p : packets) sketch.Update(p.key, p.weight);

  // Control plane: decode register state, aggregate a partial key.
  const auto table = sketch.Decode();
  const auto by_src = query::Aggregate(
      query::FlowTable<FiveTuple>(table.begin(), table.end()),
      keys::TupleKeySpec::SrcIp());
  std::printf("decoded %zu full-key flows from the register arrays\n",
              table.size());
  std::printf("top sources recovered from switch state:\n");
  for (const auto& [key, size] : query::TopRows(by_src, 3)) {
    std::printf("  %-16s %10llu pkts\n",
                Ipv4ToString(LoadBE32(key.data())).c_str(),
                static_cast<unsigned long long>(size));
  }
  return 0;
}
