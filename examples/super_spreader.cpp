// Super-spreader / scan detection with the distinct-counting CocoSketch
// extension (the §8 future-work direction): track how many DISTINCT
// destinations each source contacts, and flag scanners — sources with huge
// spread but modest packet counts, invisible to volume-based heavy hitters.
//
// Build & run:  ./build/examples/super_spreader
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/sizes.h"
#include "core/cocosketch.h"
#include "core/distinct_cocosketch.h"
#include "trace/generators.h"

using namespace coco;

int main() {
  // Background traffic plus one slow horizontal scanner: 30k packets, each
  // to a DIFFERENT destination (spread 30k, volume tiny per destination).
  const auto background =
      trace::GenerateTrace(trace::TraceConfig::CaidaLike(700'000));
  const uint32_t scanner = 0xc0a80077;  // 192.168.0.119

  core::DistinctCocoSketch<IPv4Key, IPv4Key> spread(/*d=*/2, /*l=*/512,
                                                    /*hll bits=*/8);
  core::CocoSketch<IPv4Key> volume(KiB(256), 2);

  for (const Packet& p : background) {
    spread.Update(IPv4Key(p.key.src_ip()), IPv4Key(p.key.dst_ip()));
    volume.Update(IPv4Key(p.key.src_ip()), p.weight);
  }
  Rng rng(0x5ca2);
  for (int i = 0; i < 30'000; ++i) {
    const IPv4Key victim(static_cast<uint32_t>(rng.Next()));
    spread.Update(IPv4Key(scanner), victim);
    volume.Update(IPv4Key(scanner), 1);
  }

  // Rank sources by spread.
  const auto spreads = spread.Decode();
  std::vector<std::pair<double, IPv4Key>> ranked;
  ranked.reserve(spreads.size());
  for (const auto& [key, s] : spreads) ranked.push_back({s, key});
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::printf("top sources by DISTINCT destinations contacted:\n");
  std::printf("%-18s %12s %12s\n", "source", "spread", "packets");
  for (size_t i = 0; i < std::min<size_t>(5, ranked.size()); ++i) {
    const auto& [s, key] = ranked[i];
    std::printf("%-18s %12.0f %12llu%s\n", key.ToString().c_str(), s,
                static_cast<unsigned long long>(volume.Query(key)),
                key == IPv4Key(scanner) ? "   <-- scanner" : "");
  }

  // The volume view alone would not have flagged it.
  const double volume_share =
      static_cast<double>(volume.Query(IPv4Key(scanner))) /
      static_cast<double>(background.size() + 30'000);
  std::printf(
      "\nscanner holds %.1f%% of traffic volume (well under a heavy-hitter\n"
      "threshold) but tops the spread ranking — the distinct-count extension "
      "at work.\n",
      100.0 * volume_share);
  return 0;
}
