// Quickstart: the 60-second tour of the CocoSketch public API.
//
//   1. define the full key (here: the 5-tuple) and build one CocoSketch;
//   2. stream packets through Update();
//   3. decode the (FullKey, Size) table once;
//   4. answer ANY partial-key query by GROUP BY aggregation — no key had to
//      be chosen before measurement started.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "common/sizes.h"
#include "core/cocosketch.h"
#include "keys/key_spec.h"
#include "query/flow_table.h"
#include "trace/generators.h"

using namespace coco;

int main() {
  // A synthetic 1M-packet CAIDA-like workload stands in for live traffic.
  const auto packets =
      trace::GenerateTrace(trace::TraceConfig::CaidaLike(1'000'000));

  // One sketch, 500 KB, d = 2 choice arrays — the paper's default.
  core::CocoSketch<FiveTuple> sketch(KiB(500), /*d=*/2);

  // Data plane: one cheap update per packet.
  for (const Packet& p : packets) sketch.Update(p.key, p.weight);

  // Control plane: decode once...
  const query::FlowTable<FiveTuple> table = sketch.Decode();
  std::printf("decoded %zu full-key flows from %s of sketch memory\n\n",
              table.size(), FormatBytes(sketch.MemoryBytes()).c_str());

  // ...then query ANY partial key after the fact.
  for (const auto& spec : keys::TupleKeySpec::DefaultSix()) {
    const auto partial = query::Aggregate(table, spec);
    const auto top = query::TopRows(partial, 3);
    std::printf("top flows by %s:\n", spec.name().c_str());
    for (const auto& [key, size] : top) {
      std::printf("  %-28s %10llu packets\n", key.ToHex().c_str(),
                  static_cast<unsigned long long>(size));
    }
  }

  // Partial keys never pre-registered also work — e.g. a /20 source prefix.
  const auto by_prefix =
      query::Aggregate(table, keys::TupleKeySpec::SrcIpPrefix(20));
  std::printf("\nflows aggregated by SrcIP/20: %zu groups\n",
              by_prefix.size());
  return 0;
}
