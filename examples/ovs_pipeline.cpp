// Software-switch deployment example: CocoSketch behind an OVS-style
// multi-threaded datapath (ring buffers + polling measurement threads, as in
// Appendix B), with a NIC line-rate cap. Shows the end-to-end path from
// packets on the wire to partial-key answers, plus the measurement CPU cost
// and the live observability layer (docs/OBSERVABILITY.md).
//
// Two runs:
//   1. fault-free backpressure run — health counters all land in `exact`;
//   2. faulted run (drop-newest ring, injected consumer stall, degradation
//      ladder, checkpoints + a mid-run kill) — every robustness path fires,
//      and the metrics registry still reconstructs the offered packet count
//      from exact + degraded + rx_dropped per queue.
//
// Both runs publish into an obs::Registry; the final snapshot is exported
// as JSON to stdout (or to the file given as argv[1]).
//
// Build & run:  ./build/examples/ovs_pipeline [metrics-out.json]
#include <cstdio>

#include "common/sizes.h"
#include "core/cocosketch.h"
#include "keys/key_spec.h"
#include "obs/snapshot.h"
#include "ovs/datapath_sim.h"
#include "query/flow_table.h"
#include "trace/generators.h"

using namespace coco;

namespace {

void PrintHealth(const ovs::DatapathResult& result,
                 const ovs::DatapathConfig& config) {
  std::printf("  drained  : %llu packets\n",
              static_cast<unsigned long long>(result.packets_processed));
  std::printf("  rate     : %.2f Mpps (NIC cap %.1f)\n", result.mpps,
              config.nic_rate_mpps);
  std::printf("  upd CPU  : %.2f%% of measurement-thread cycles\n",
              100.0 * result.measurement_cpu_fraction);
  const ovs::DatapathHealth& h = result.health;
  std::printf("  health   : exact %llu, degraded %llu (%.2f%%), dropped %llu\n",
              static_cast<unsigned long long>(h.packets_exact),
              static_cast<unsigned long long>(h.packets_degraded),
              100.0 * h.degraded_fraction,
              static_cast<unsigned long long>(h.rx_dropped));
  std::printf("  faults   : stalls %llu (detected %llu), kills %llu, "
              "restores %llu, est. lost %llu\n",
              static_cast<unsigned long long>(h.stalls_injected),
              static_cast<unsigned long long>(h.stalls_detected),
              static_cast<unsigned long long>(h.kills_injected),
              static_cast<unsigned long long>(h.restores),
              static_cast<unsigned long long>(h.packets_lost_estimate));
}

}  // namespace

int main(int argc, char** argv) {
  const char* metrics_sink = argc > 1 ? argv[1] : "-";
  const auto packets =
      trace::GenerateTrace(trace::TraceConfig::CaidaLike(400'000));

  // ---- Run 1: fault-free backpressure datapath --------------------------
  obs::Registry clean_registry;
  ovs::DatapathConfig config;
  config.num_queues = 2;          // two Rx queues, two measurement threads
  config.nic_rate_mpps = 13.0;    // 40GbE at the trace's mean packet size
  config.with_sketch = true;
  config.sketch_memory_bytes = KiB(512);
  config.registry = &clean_registry;

  std::printf("running %zu packets through a %zu-queue datapath...\n",
              packets.size(), config.num_queues);
  const auto result = ovs::RunDatapath(config, packets);
  PrintHealth(result, config);

  // The datapath decodes and merges its shared-nothing partitions on exit —
  // query the merged control-plane table directly.
  const auto by_dst =
      query::Aggregate(result.merged_table, keys::TupleKeySpec::DstIp());
  std::printf("\ntop destinations across the datapath's traffic:\n");
  for (const auto& [key, size] : query::TopRows(by_dst, 5)) {
    std::printf("  %-16s %10llu pkts\n",
                Ipv4ToString(LoadBE32(key.data())).c_str(),
                static_cast<unsigned long long>(size));
  }

  // ---- Run 2: every robustness path firing, metrics still conserve ------
  obs::Registry registry;
  ovs::DatapathConfig faulty = config;
  faulty.registry = &registry;
  // Pace the wire slowly enough that the run outlives the injected stall —
  // otherwise the whole trace arrives inside the stall window and nothing is
  // left to exercise the checkpoint/kill/restore paths.
  faulty.nic_rate_mpps = 1.0;
  faulty.ring_capacity = 256;
  faulty.overflow = ovs::OverflowPolicy::kDropNewest;
  faulty.degrade_enabled = true;
  faulty.degrade_sample_prob = 0.25;
  faulty.checkpoint_interval = 4096;
  faulty.watchdog_timeout_ms = 50;
  faulty.faults.stalls.push_back({0, 0, 100});  // first-batch stall: backlog
  faulty.faults.kills.push_back({1, packets.size() / faulty.num_queues / 2});

  std::printf("\nre-running with injected faults "
              "(drop-newest ring, 100 ms stall on q0, kill on q1)...\n");
  const auto faulted = ovs::RunDatapath(faulty, packets);
  PrintHealth(faulted, faulty);

  // Conservation, read live from the registry rather than DatapathResult:
  // per queue, offered == exact + degraded + rx_dropped once quiescent.
  const auto view = ovs::ReadConservation(&registry, faulty.num_queues);
  std::printf("  conserve : offered %llu == exact %llu + degraded %llu + "
              "dropped %llu -> %s\n",
              static_cast<unsigned long long>(view.offered),
              static_cast<unsigned long long>(view.exact),
              static_cast<unsigned long long>(view.degraded),
              static_cast<unsigned long long>(view.rx_dropped),
              view.Holds() ? "OK" : "VIOLATED");

  // Export the faulted run's full snapshot as machine-readable JSON.
  std::printf("\nmetrics snapshot (%s):\n",
              metrics_sink[0] == '-' ? "stdout" : metrics_sink);
  obs::SnapshotExporter exporter(&registry, metrics_sink);
  if (!exporter.WriteNow()) {
    std::fprintf(stderr, "cannot write metrics snapshot to %s\n",
                 metrics_sink);
    return 1;
  }
  return view.Holds() ? 0 : 1;
}
