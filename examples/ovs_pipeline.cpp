// Software-switch deployment example: CocoSketch behind an OVS-style
// multi-threaded datapath (ring buffers + polling measurement threads, as in
// Appendix B), with a NIC line-rate cap. Shows the end-to-end path from
// packets on the wire to partial-key answers, plus the measurement CPU cost.
//
// Build & run:  ./build/examples/ovs_pipeline
#include <cstdio>

#include "common/sizes.h"
#include "core/cocosketch.h"
#include "keys/key_spec.h"
#include "ovs/datapath_sim.h"
#include "query/flow_table.h"
#include "trace/generators.h"

using namespace coco;

int main() {
  const auto packets =
      trace::GenerateTrace(trace::TraceConfig::CaidaLike(400'000));

  ovs::DatapathConfig config;
  config.num_queues = 2;          // two Rx queues, two measurement threads
  config.nic_rate_mpps = 13.0;    // 40GbE at the trace's mean packet size
  config.with_sketch = true;
  config.sketch_memory_bytes = KiB(512);

  std::printf("running %zu packets through a %zu-queue datapath...\n",
              packets.size(), config.num_queues);
  const auto result = ovs::RunDatapath(config, packets);
  std::printf("  drained  : %llu packets\n",
              static_cast<unsigned long long>(result.packets_processed));
  std::printf("  rate     : %.2f Mpps (NIC cap %.1f)\n", result.mpps,
              config.nic_rate_mpps);
  std::printf("  upd CPU  : %.2f%% of measurement-thread cycles\n",
              100.0 * result.measurement_cpu_fraction);

  // Health section: the fault-tolerance layer's accounting. In this
  // fault-free backpressure run everything lands in `exact`, and
  // exact + degraded + dropped always reconstructs the offered count.
  const ovs::DatapathHealth& h = result.health;
  std::printf("  health   : exact %llu, degraded %llu (%.2f%%), dropped %llu\n",
              static_cast<unsigned long long>(h.packets_exact),
              static_cast<unsigned long long>(h.packets_degraded),
              100.0 * h.degraded_fraction,
              static_cast<unsigned long long>(h.rx_dropped));
  std::printf("  faults   : stalls %llu (detected %llu), kills %llu, "
              "restores %llu, est. lost %llu\n\n",
              static_cast<unsigned long long>(h.stalls_injected),
              static_cast<unsigned long long>(h.stalls_detected),
              static_cast<unsigned long long>(h.kills_injected),
              static_cast<unsigned long long>(h.restores),
              static_cast<unsigned long long>(h.packets_lost_estimate));

  // The datapath decodes and merges its shared-nothing partitions on exit —
  // query the merged control-plane table directly.
  const auto by_dst =
      query::Aggregate(result.merged_table, keys::TupleKeySpec::DstIp());
  std::printf("top destinations across the datapath's traffic:\n");
  for (const auto& [key, size] : query::TopRows(by_dst, 5)) {
    std::printf("  %-16s %10llu pkts\n",
                Ipv4ToString(LoadBE32(key.data())).c_str(),
                static_cast<unsigned long long>(size));
  }
  return 0;
}
