// SQL console: measure a workload with one CocoSketch, then answer the
// paper's §4.3-style SQL queries against the decoded table. Pass a query as
// the (single) command-line argument, or run the built-in demo set.
//
// Usage:
//   ./build/examples/sql_console
//   ./build/examples/sql_console "SELECT SrcIP/16, SUM(Size) FROM flows \
//        GROUP BY SrcIP/16 ORDER BY SUM(Size) DESC LIMIT 5"
#include <cstdio>
#include <string>
#include <vector>

#include "common/sizes.h"
#include "core/cocosketch.h"
#include "query/sql.h"
#include "trace/generators.h"

using namespace coco;

int main(int argc, char** argv) {
  // Measure once.
  const auto packets =
      trace::GenerateTrace(trace::TraceConfig::CaidaLike(800'000));
  core::CocoSketch<FiveTuple> sketch(KiB(500), 2);
  for (const Packet& p : packets) sketch.Update(p.key, p.weight);
  const auto table = sketch.Decode();
  std::printf("measured %zu packets -> %zu decoded flows; ready for SQL\n\n",
              packets.size(), table.size());

  std::vector<std::string> queries;
  if (argc > 1) {
    queries.push_back(argv[1]);
  } else {
    queries = {
        "SELECT SrcIP, SUM(Size) FROM flows GROUP BY SrcIP "
        "ORDER BY SUM(Size) DESC LIMIT 5",
        "SELECT SrcIP/16, SUM(Size) FROM flows GROUP BY SrcIP/16 "
        "HAVING SUM(Size) >= 10000 ORDER BY SUM(Size) DESC LIMIT 5",
        "SELECT DstIP, DstPort, SUM(Size) FROM flows "
        "GROUP BY DstIP, DstPort ORDER BY SUM(Size) DESC LIMIT 5",
        "SELECT Proto, SUM(Size) FROM flows GROUP BY Proto",
    };
  }

  for (const std::string& text : queries) {
    std::printf("> %s\n", text.c_str());
    std::string error;
    const auto result = query::sql::Query(text, table, &error);
    if (!result) {
      std::printf("error: %s\n\n", error.c_str());
      continue;
    }
    std::printf("%s(%zu rows)\n\n", query::sql::FormatResult(*result).c_str(),
                result->rows.size());
  }
  return 0;
}
